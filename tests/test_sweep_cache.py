"""ResultCache hygiene: LRU entry bounds and TTL expiry."""

from __future__ import annotations

import os

import pytest

from repro.errors import ValidationError
from repro.sweep import ResultCache


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestLruEviction:
    def test_evicts_least_recently_put(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a", "miss") == "miss"
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_get_refreshes_recency(self):
        """A hit protects the entry: eviction order is by use, not
        insertion."""
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b", "miss") == "miss"
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_eviction_order_across_many_puts(self):
        cache = ResultCache(max_entries=3)
        for i in range(10):
            cache.put(f"k{i}", i)
        assert [k for k in range(10) if cache.get(f"k{k}", None) is not None] == [
            7, 8, 9
        ]
        assert cache.evictions == 7

    def test_eviction_removes_persisted_file(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), max_entries=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert not (tmp_path / "a.json").exists()
        assert (tmp_path / "b.json").exists()

    def test_hit_recency_survives_restart_for_pure_lru(self, tmp_path):
        """A disk-backed hit refreshes the file mtime (pure-LRU caches
        only), so a reopened cache evicts by last *use*, not last
        write."""
        first = ResultCache(directory=str(tmp_path), max_entries=2)
        first.put("old_but_hot", 1)
        first.put("newer_cold", 2)
        old = (tmp_path / "old_but_hot.json").stat().st_mtime
        os.utime(tmp_path / "old_but_hot.json", (old - 100, old - 100))
        os.utime(tmp_path / "newer_cold.json", (old - 50, old - 50))
        warm = ResultCache(directory=str(tmp_path), max_entries=2)
        assert warm.get("old_but_hot") == 1  # refreshes mtime
        reopened = ResultCache(directory=str(tmp_path), max_entries=2)
        reopened.put("c", 3)  # over bound: evicts by adopted mtime order
        assert reopened.get("old_but_hot") == 1
        assert reopened.get("newer_cold", "miss") == "miss"

    def test_bound_enforced_across_reopened_directories(self, tmp_path):
        """A bounded cache adopting an existing directory applies the
        bound to pre-existing files too — the directory cannot outgrow
        max_entries across process restarts."""
        first = ResultCache(directory=str(tmp_path), max_entries=2)
        for i in range(3):
            first.put(f"a{i}", i)
        assert len(list(tmp_path.glob("*.json"))) == 2
        second = ResultCache(directory=str(tmp_path), max_entries=2)
        for i in range(3):
            second.put(f"b{i}", i)
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert sorted(p.stem for p in tmp_path.glob("*.json")) == ["b1", "b2"]

    def test_reopened_bounded_cache_still_serves_survivors(self, tmp_path):
        first = ResultCache(directory=str(tmp_path), max_entries=2)
        first.put("a", 1)
        first.put("b", 2)
        second = ResultCache(directory=str(tmp_path), max_entries=2)
        assert second.get("a") == 1 and second.get("b") == 2
        assert len(second) == 2

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValidationError, match="max_entries"):
            ResultCache(max_entries=0)
        with pytest.raises(ValidationError, match="ttl_s"):
            ResultCache(ttl_s=0)


class TestTtlExpiry:
    def test_expired_entry_is_a_miss(self):
        clock = FakeClock()
        cache = ResultCache(ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        assert cache.get("a") == 1
        clock.advance(10.1)
        assert cache.get("a", "miss") == "miss"
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_fresh_entry_survives(self):
        clock = FakeClock()
        cache = ResultCache(ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(9.9)
        assert cache.get("a") == 1

    def test_expiry_removes_persisted_file(self, tmp_path):
        clock = FakeClock()
        cache = ResultCache(directory=str(tmp_path), ttl_s=5.0, clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        assert cache.get("a", "miss") == "miss"
        assert not (tmp_path / "a.json").exists()

    def test_persisted_entries_age_by_mtime(self, tmp_path):
        """A cache re-opened after the TTL treats old files as cold."""
        stale = ResultCache(directory=str(tmp_path))
        stale.put("a", 1)
        old = (tmp_path / "a.json").stat().st_mtime
        os.utime(tmp_path / "a.json", (old - 100, old - 100))
        fresh = ResultCache(directory=str(tmp_path), ttl_s=50.0)
        assert fresh.get("a", "miss") == "miss"
        assert fresh.expirations == 1

    def test_persisted_fresh_entry_loads(self, tmp_path):
        ResultCache(directory=str(tmp_path)).put("a", 1)
        fresh = ResultCache(directory=str(tmp_path), ttl_s=3600.0)
        assert fresh.get("a") == 1


class TestConcurrentDeletionRaces:
    """A concurrent sweep process may evict a persisted entry at any
    moment; the cache must treat a vanished file as a miss/skip, never
    crash (regression: __init__ stat'd each globbed file and raised
    FileNotFoundError when one was deleted between glob and stat)."""

    def test_adoption_tolerates_file_deleted_mid_index(self, tmp_path, monkeypatch):
        import pathlib

        seed = ResultCache(directory=str(tmp_path), max_entries=10)
        for i in range(3):
            seed.put(f"k{i}", i)
        victim = tmp_path / "k1.json"
        real_glob = pathlib.Path.glob

        def racy_glob(self, pattern):
            for p in real_glob(self, pattern):
                if p.name == victim.name and p.exists():
                    p.unlink()  # "another process" evicts mid-listing
                yield p

        monkeypatch.setattr(pathlib.Path, "glob", racy_glob)
        reopened = ResultCache(directory=str(tmp_path), max_entries=10)
        assert reopened.get("k0") == 0
        assert reopened.get("k2") == 2
        assert reopened.get("k1", "miss") == "miss"

    def test_get_tolerates_unindexed_file_vanishing(self, tmp_path, monkeypatch):
        import pathlib

        seed = ResultCache(directory=str(tmp_path))
        seed.put("gone", 1)
        fresh = ResultCache(directory=str(tmp_path), max_entries=10)
        real_stat = pathlib.Path.stat

        def racy_stat(self, **kwargs):
            if self.name == "gone.json":
                self.unlink(missing_ok=True)
            return real_stat(self, **kwargs)

        monkeypatch.setattr(pathlib.Path, "stat", racy_stat)
        assert fresh.get("gone", "miss") == "miss"
        assert fresh.misses == 1

    def test_drop_tolerates_already_unlinked_file(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path), max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        (tmp_path / "a.json").unlink()  # evicted externally first
        cache.put("c", 3)  # over bound: evicts "a", whose file is gone
        assert cache.get("b") == 2 and cache.get("c") == 3
        assert cache.get("a", "miss") == "miss"


class TestUnboundedCompatibility:
    """Default construction keeps the original semantics."""

    def test_no_bounds_no_eviction(self):
        cache = ResultCache()
        for i in range(100):
            cache.put(f"k{i}", i)
        assert len(cache) == 100
        assert cache.evictions == 0 and cache.expirations == 0
