"""Routed multi-hop fluid dynamics: flow x link contention.

The multilink engine's contract mirrors the single-link one: the
sequential and batched forms are bit-identical for any batch
composition, a one-hop ``links=`` route is *exactly* the classic
single-bottleneck simulation, and adding multilink experiments to a
batch never moves a bit of the single-link experiments already in it.
On top of that, per-link fault schedules must degrade the route when —
and only when — a faulted hop becomes the effective bottleneck.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.iperfsim.runner import (
    run_experiment,
    run_experiments_batched,
    run_sweep,
)
from repro.iperfsim.spec import ExperimentSpec
from repro.simnet.batch import BatchFluidSimulator
from repro.simnet.faults import FaultEvent, brownout_schedule, coerce_link_faults
from repro.simnet.link import Link, fabric_link
from repro.simnet.tcp import FluidTcpSimulator
from repro.simnet.topology import cross_facility_testbed

from test_simnet_batch import assert_results_bit_identical


def cross_links():
    """The cross-facility edge->hpc route links (bottleneck: hop 1)."""
    return cross_facility_testbed().route("edge", "hpc").links


def sequential_ml(links, flows, link_faults=None, seed=0, max_time_s=300.0):
    sim = FluidTcpSimulator(links=links, link_faults=link_faults, seed=seed)
    for f in flows:
        sim.add_flow(*f)
    return sim.run(max_time_s=max_time_s)


def batched_ml(cases, max_time_s=300.0):
    """cases: list of (links, link_faults, seed, flows)."""
    bat = BatchFluidSimulator()
    for links, link_faults, seed, flows in cases:
        e = bat.add_experiment(links=links, link_faults=link_faults, seed=seed)
        for f in flows:
            bat.add_flow(e, *f)
    return bat.run(max_time_s=max_time_s)


def ml_cases():
    """Multilink batch compositions: each CC alone, kinds mixed, sparse
    spawn schedules, and a per-link brownout on the WAN bottleneck."""
    wan_fault = [(), brownout_schedule(1.0, 0.3, start_s=0.1), ()]
    return [
        (cross_links(), None, 0, [(0.0, 0.5e9, c) for c in range(4)]),
        (cross_links(), None, 1, [(0.0, 0.4e9, c, "dctcp") for c in range(6)]),
        (cross_links(), None, 2, [(0.0, 0.4e9, c, "delay") for c in range(6)]),
        (
            cross_links(),
            None,
            3,
            [(0.1 * c, 0.3e9, c, ("reno", "dctcp", "delay")[c % 3]) for c in range(9)],
        ),
        (cross_links(), wan_fault, 4, [(0.0, 0.5e9, c) for c in range(4)]),
        (cross_links(), None, 5, [(2.0 * k, 5e6, k) for k in range(4)]),
    ]


class TestOneHopNormalization:
    """A one-hop ``links=`` route IS the classic single-link engine."""

    def test_sequential_one_hop_is_classic(self):
        flows = [(0.0, 0.5e9, c) for c in range(4)]
        classic = FluidTcpSimulator(fabric_link(), seed=3)
        routed = FluidTcpSimulator(links=[fabric_link()], seed=3)
        for f in flows:
            classic.add_flow(*f)
            routed.add_flow(*f)
        assert_results_bit_identical(classic.run(), routed.run(), "one-hop seq")

    def test_batched_one_hop_is_classic(self):
        flows = [(0.0, 0.5e9, c) for c in range(4)]
        a = BatchFluidSimulator()
        ea = a.add_experiment(fabric_link(), seed=3)
        b = BatchFluidSimulator()
        eb = b.add_experiment(links=[fabric_link()], seed=3)
        for f in flows:
            a.add_flow(ea, *f)
            b.add_flow(eb, *f)
        assert_results_bit_identical(a.run()[0], b.run()[0], "one-hop batch")

    def test_one_hop_fault_schedule_is_classic_faults(self):
        sched = brownout_schedule(1.0, 0.2, start_s=0.2)
        flows = [(0.0, 0.5e9, c) for c in range(4)]
        classic = FluidTcpSimulator(fabric_link(), seed=0, faults=sched)
        routed = FluidTcpSimulator(
            links=[fabric_link()], link_faults=[sched], seed=0
        )
        for f in flows:
            classic.add_flow(*f)
            routed.add_flow(*f)
        assert_results_bit_identical(classic.run(), routed.run(), "one-hop fault")


class TestMultilinkBitEquivalence:
    def test_batched_matches_sequential(self):
        cases = ml_cases()
        batched = batched_ml(cases)
        for i, ((links, lf, seed, flows), b) in enumerate(zip(cases, batched)):
            a = sequential_ml(links, flows, link_faults=lf, seed=seed)
            assert_results_bit_identical(a, b, label=f"ml case {i}")

    def test_batch_order_does_not_matter(self):
        cases = ml_cases()
        forward = batched_ml(cases)
        backward = batched_ml(list(reversed(cases)))
        for f, b in zip(forward, reversed(backward)):
            assert_results_bit_identical(f, b, label="ml order")

    def test_noop_schedules_bit_identical_to_fault_free(self):
        """A schedule that cannot change dynamics must not change a bit
        (the fault-aware code paths stay dormant)."""
        noop = [
            (FaultEvent(1.0, 0.0, 0.0),),  # zero duration
            (FaultEvent(1.0, 5.0, 1.0),),  # full capacity
            (),
        ]
        flows = [(0.0, 0.5e9, c) for c in range(4)]
        a = sequential_ml(cross_links(), flows, link_faults=None, seed=0)
        b = sequential_ml(cross_links(), flows, link_faults=noop, seed=0)
        assert_results_bit_identical(a, b, label="ml noop")

    def test_multilink_never_perturbs_single_link_experiments(self):
        """The tentpole regression guard: stacking routed experiments
        into a batch must not move a bit of the classic single-link
        experiments riding in the same batch."""
        flows_s = [(0.0, 0.3e9, 0), (0.5, 0.3e9, 1)]
        alone = BatchFluidSimulator(dt_s=0.004)
        ea = alone.add_experiment(fabric_link(), seed=7)
        for f in flows_s:
            alone.add_flow(ea, *f)
        (ref,) = alone.run()

        mixed = BatchFluidSimulator(dt_s=0.004)
        es = mixed.add_experiment(fabric_link(), seed=7)
        em = mixed.add_experiment(links=cross_links(), seed=1)
        for f in flows_s:
            mixed.add_flow(es, *f)
        for c in range(4):
            mixed.add_flow(em, 0.0, 0.4e9, c)
        results = mixed.run()
        assert_results_bit_identical(ref, results[es], label="single isolation")
        a = FluidTcpSimulator(links=cross_links(), seed=1, dt_s=0.004)
        for c in range(4):
            a.add_flow(0.0, 0.4e9, c)
        assert_results_bit_identical(a.run(), results[em], label="ml in mixed")

    def test_repeated_run_continues_rng_stream(self):
        """Two runs on one sequential simulator must match two runs on
        the classic engine's semantics: each run() consumes the same
        generator, so a fresh simulator reproduces only the first."""
        sim = FluidTcpSimulator(links=cross_links(), seed=0)
        for c in range(4):
            sim.add_flow(0.0, 0.4e9, c)
        first = sim.run()
        again = sim.run()
        fresh = FluidTcpSimulator(links=cross_links(), seed=0)
        for c in range(4):
            fresh.add_flow(0.0, 0.4e9, c)
        assert_results_bit_identical(fresh.run(), first, label="first run")
        assert again.all_completed


class TestRoutedSpecEquivalence:
    def routed_specs(self):
        topo = cross_facility_testbed()
        return [
            ExperimentSpec(
                concurrency=c,
                parallel_flows=2,
                duration_s=2.0,
                cc=cc,
                topology=topo,
                route=("edge", "hpc"),
            )
            for c in (2, 4)
            for cc in ("reno", "dctcp")
        ]

    @pytest.mark.parametrize("batch_size", [1, 3, 100])
    def test_batch_size_invariance(self, batch_size):
        units = [(spec, seed) for spec in self.routed_specs() for seed in (0,)]
        chunked = run_experiments_batched(units, batch_size=batch_size)
        for (spec, seed), b in zip(units, chunked):
            a = run_experiment(spec, seed=seed)
            assert a.client_times_s == b.client_times_s
            assert a.achieved_utilization == b.achieved_utilization
            assert a.offered_utilization == b.offered_utilization

    def test_workers_bit_identical(self):
        specs = self.routed_specs()
        serial = run_sweep(specs, seeds=(0, 1), workers=1)
        split = run_sweep(specs, seeds=(0, 1), workers=2)
        for ea, eb in zip(serial.experiments, split.experiments):
            assert ea.client_times_s == eb.client_times_s
            assert ea.achieved_utilization == eb.achieved_utilization

    def test_offered_utilization_uses_route_bottleneck(self):
        spec = self.routed_specs()[0]
        route = spec.resolved_route()
        assert route is not None
        single = ExperimentSpec(
            concurrency=spec.concurrency,
            parallel_flows=spec.parallel_flows,
            duration_s=spec.duration_s,
        )
        assert spec.offered_utilization(fabric_link()) == pytest.approx(
            single.offered_utilization(route.bottleneck)
        )


class TestPerLinkFaults:
    def _fct(self, link_faults):
        res = sequential_ml(
            cross_links(),
            [(0.0, 0.25e9, c) for c in range(4)],
            link_faults=link_faults,
            seed=0,
        )
        assert res.all_completed
        return max(f.end_s for f in res.flows)

    def test_bottleneck_outage_delays_completion(self):
        outage = [(), (FaultEvent(0.05, 2.0, 0.0),), ()]
        assert self._fct(outage) > self._fct(None) + 1.0

    def test_non_bottleneck_hop_can_become_the_bottleneck(self):
        """An outage on the fast edge hop still stalls the route — the
        route's effective capacity is the min over hops, not the
        nominal bottleneck's."""
        edge_out = [(FaultEvent(0.05, 2.0, 0.0),), (), ()]
        assert self._fct(edge_out) > self._fct(None) + 1.0

    def test_mild_brownout_on_fast_hop_is_harmless(self):
        """Degrading the 100 Gbps edge hop to half speed leaves it far
        above the 25 Gbps WAN — dynamics must not change at all."""
        mild = [(FaultEvent(0.0, 10.0, 0.5),), (), ()]
        flows = [(0.0, 0.25e9, c) for c in range(4)]
        a = sequential_ml(cross_links(), flows, link_faults=None, seed=0)
        b = sequential_ml(cross_links(), flows, link_faults=mild, seed=0)
        assert a.all_completed and b.all_completed
        assert max(f.end_s for f in a.flows) == pytest.approx(
            max(f.end_s for f in b.flows), rel=1e-6
        )

    def test_fault_after_completion_is_inert(self):
        late = [(), (FaultEvent(200.0, 5.0, 0.0),), ()]
        flows = [(0.0, 0.25e9, c) for c in range(4)]
        a = sequential_ml(cross_links(), flows, link_faults=None, seed=0)
        b = sequential_ml(cross_links(), flows, link_faults=late, seed=0)
        assert max(f.end_s for f in b.flows) == pytest.approx(
            max(f.end_s for f in a.flows), rel=1e-6
        )


class TestMultilinkBehavior:
    def test_reports_bottleneck_capacity(self):
        res = sequential_ml(cross_links(), [(0.0, 0.2e9, 0)])
        assert res.capacity_bytes_per_s == pytest.approx(25.0e9 / 8)

    def test_conservation(self):
        flows = [(0.0, 0.3e9, c) for c in range(5)]
        res = sequential_ml(cross_links(), flows)
        assert res.all_completed
        assert res.total_flow_bytes() == pytest.approx(5 * 0.3e9)

    def test_default_dt_is_quarter_route_rtt(self):
        sim = FluidTcpSimulator(links=cross_links())
        route_rtt = sum(l.rtt_s for l in cross_links())
        assert sim.dt_s == pytest.approx(route_rtt / 4.0)

    def test_congestion_hurts_more_hops(self):
        """Same offered load: the routed path's worst FCT is at least
        the single-bottleneck one (extra RTT, extra queues)."""
        flows = [(0.0, 0.5e9, c) for c in range(6)]
        single = sequential_run_classic(flows)
        multi = sequential_ml(cross_links(), flows, seed=0)
        assert multi.all_completed
        assert (
            max(f.end_s for f in multi.flows)
            >= max(f.end_s for f in single.flows) * 0.99
        )


def sequential_run_classic(flows, seed=0):
    sim = FluidTcpSimulator(fabric_link(), seed=seed)
    for f in flows:
        sim.add_flow(*f)
    return sim.run()


class TestValidation:
    def test_exactly_one_of_link_or_links(self):
        with pytest.raises(ValidationError, match="exactly one"):
            FluidTcpSimulator(fabric_link(), links=cross_links())
        with pytest.raises(ValidationError, match="exactly one"):
            FluidTcpSimulator()
        bat = BatchFluidSimulator()
        with pytest.raises(ValidationError, match="exactly one"):
            bat.add_experiment(fabric_link(), links=cross_links())
        with pytest.raises(ValidationError, match="exactly one"):
            bat.add_experiment()

    def test_empty_links_rejected(self):
        with pytest.raises(ValidationError, match=">= 1 link"):
            FluidTcpSimulator(links=[])
        with pytest.raises(ValidationError, match=">= 1 link"):
            BatchFluidSimulator().add_experiment(links=[])

    def test_links_with_scalar_faults_rejected(self):
        sched = brownout_schedule(1.0, 0.0, start_s=0.1)
        with pytest.raises(ValidationError, match="link_faults"):
            FluidTcpSimulator(links=cross_links(), faults=sched)
        with pytest.raises(ValidationError, match="link_faults"):
            BatchFluidSimulator().add_experiment(
                links=cross_links(), faults=sched
            )

    def test_link_faults_without_links_rejected(self):
        with pytest.raises(ValidationError, match="needs links="):
            FluidTcpSimulator(fabric_link(), link_faults=[()])
        with pytest.raises(ValidationError, match="needs links="):
            BatchFluidSimulator().add_experiment(
                fabric_link(), link_faults=[()]
            )

    def test_link_faults_length_must_match(self):
        with pytest.raises(ValidationError):
            FluidTcpSimulator(links=cross_links(), link_faults=[(), ()])

    def test_coerce_link_faults_contract(self):
        assert coerce_link_faults(None, 3) == ((), (), ())
        with pytest.raises(ValidationError, match="bare"):
            coerce_link_faults(FaultEvent(0.0, 1.0), 2)
        with pytest.raises(ValidationError):
            coerce_link_faults([()], 2)
        with pytest.raises(ValidationError):
            coerce_link_faults(None, 0)

    def test_mixed_dt_batch_rejected(self):
        """A fabric single-link experiment (dt = rtt/4 = 4 ms) and a
        cross-facility route (dt = 18.5 ms / 4) cannot share a batch
        without an explicit dt_s."""
        bat = BatchFluidSimulator()
        bat.add_experiment(fabric_link())
        with pytest.raises(ValidationError, match="share the simulation step"):
            bat.add_experiment(links=cross_links())

    def test_dt_exceeding_route_rtt_rejected(self):
        with pytest.raises(ValidationError, match="must not exceed"):
            FluidTcpSimulator(links=cross_links(), dt_s=1.0)
