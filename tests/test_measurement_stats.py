"""Tail statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.measurement.stats import (
    percentile,
    summarize,
    tail_ratio,
    worst_case,
)


class TestBasics:
    def test_worst_case(self):
        assert worst_case([0.1, 5.0, 0.2]) == 5.0

    def test_percentile(self):
        samples = list(range(1, 101))
        assert percentile(samples, 50) == pytest.approx(50.5)
        assert percentile(samples, 100) == 100

    def test_percentile_bounds(self):
        with pytest.raises(MeasurementError):
            percentile([1.0], 101)

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            worst_case([])

    def test_nan_raises(self):
        with pytest.raises(MeasurementError):
            summarize([1.0, float("nan")])


class TestTailRatio:
    def test_uniform_is_tight(self):
        samples = np.linspace(1.0, 2.0, 1000)
        assert tail_ratio(samples, 99) < 2.0

    def test_long_tail_is_large(self):
        # 99 fast transfers and one 50x outlier: P99/P50 blows up.
        samples = [0.2] * 99 + [10.0]
        assert tail_ratio(samples, 99.5) > 10.0

    def test_zero_median_raises(self):
        with pytest.raises(MeasurementError):
            tail_ratio([0.0, 0.0, 1.0])


class TestSummary:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
        assert s.count == 5
        assert s.maximum == 100.0
        assert s.mean == pytest.approx(22.0)
        assert s.p50 == pytest.approx(3.0)

    def test_max_over_mean_flags_bias(self):
        # The average hides the outlier; the ratio exposes it.
        s = summarize([0.2] * 99 + [10.0])
        assert s.max_over_mean > 30.0

    def test_p99_over_p50(self):
        s = summarize([1.0] * 90 + [10.0] * 10)
        assert s.p99_over_p50 == pytest.approx(10.0)


class TestProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1))
    def test_ordering_invariants(self, samples):
        s = summarize(samples)
        assert s.p50 <= s.p90 + 1e-12
        assert s.p90 <= s.p99 + 1e-12
        assert s.p99 <= s.maximum + 1e-12
        # One-ULP slack: the mean of identical floats can round a hair
        # outside [min, max] under pairwise summation.
        tol = 1e-9 * max(abs(s.maximum), 1.0)
        assert min(samples) - tol <= s.mean <= s.maximum + tol

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=2),
        st.floats(min_value=0.01, max_value=1e4),
    )
    def test_adding_large_sample_never_lowers_max(self, samples, extra):
        m1 = worst_case(samples)
        m2 = worst_case(samples + [extra])
        assert m2 >= m1
