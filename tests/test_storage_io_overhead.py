"""Theta estimation (Eq. 7) from the storage substrate."""

from __future__ import annotations

import pytest

from repro.storage.aggregation import AggregationPlan
from repro.storage.dtn import DtnModel
from repro.storage.io_overhead import estimate_theta
from repro.storage.presets import eagle_lustre, voyager_gpfs


def plan(n_files):
    return AggregationPlan(
        n_frames=1440, frame_bytes=2048 * 2048 * 2, n_files=n_files
    )


def dtn(**kw):
    base = dict(wan_bandwidth_gbps=25.0, alpha=0.5, per_file_setup_s=1.0)
    base.update(kw)
    return DtnModel(**base)


class TestThetaEstimate:
    def test_theta_at_least_one(self, source_fs, dest_fs):
        est = estimate_theta(plan(1), dtn(), source_fs, dest_fs)
        assert est.theta >= 1.0

    def test_theta_grows_with_file_count(self, source_fs, dest_fs):
        thetas = [
            estimate_theta(plan(n), dtn(), source_fs, dest_fs).theta
            for n in (1, 10, 144, 1440)
        ]
        assert thetas == sorted(thetas)
        assert thetas[-1] > 10 * thetas[0]

    def test_small_file_theta_dominated_by_setup(self, source_fs, dest_fs):
        est = estimate_theta(plan(1440), dtn(), source_fs, dest_fs)
        assert est.setup_total_s == pytest.approx(1440.0)
        assert est.setup_total_s / est.staged_total_s > 0.9

    def test_io_overhead_consistent(self, source_fs, dest_fs):
        est = estimate_theta(plan(10), dtn(), source_fs, dest_fs)
        assert est.io_overhead_s == pytest.approx(
            est.staged_total_s - est.pure_transfer_s
        )
        # Eq. 7 round-trip: theta * T_transfer == T_IO + T_transfer.
        assert est.theta * est.pure_transfer_s == pytest.approx(
            est.io_overhead_s + est.pure_transfer_s
        )

    def test_concurrency_reduces_staged_total(self, source_fs, dest_fs):
        serial = estimate_theta(plan(144), dtn(), source_fs, dest_fs)
        parallel = estimate_theta(
            plan(144), dtn(concurrency=8), source_fs, dest_fs
        )
        assert parallel.staged_total_s < serial.staged_total_s
        assert parallel.staged_total_s >= parallel.pure_transfer_s

    def test_staged_total_floored_at_pure_transfer(self, source_fs, dest_fs):
        # Extreme concurrency cannot beat the WAN.
        est = estimate_theta(
            plan(144), dtn(concurrency=256, per_file_setup_s=0.0),
            source_fs, dest_fs,
        )
        assert est.staged_total_s >= est.pure_transfer_s * (1 - 1e-12)

    def test_checksum_adds_time(self, source_fs, dest_fs):
        without = estimate_theta(plan(10), dtn(), source_fs, dest_fs)
        with_ck = estimate_theta(
            plan(10), dtn(checksum_gbytes_per_s=1.0), source_fs, dest_fs
        )
        assert with_ck.theta > without.theta
        assert with_ck.checksum_total_s > 0

    def test_feeds_core_model(self, source_fs, dest_fs):
        """The estimated theta plugs into the closed-form T_pct."""
        from repro.core.model import t_pct

        est = estimate_theta(plan(10), dtn(), source_fs, dest_fs)
        t = t_pct(
            s_unit_gb=12.08,
            complexity_flop_per_gb=1e12,
            r_local_tflops=10.0,
            bandwidth_gbps=25.0,
            alpha=0.5,
            r=10.0,
            theta=est.theta,
        )
        assert t > 0
