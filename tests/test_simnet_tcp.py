"""Fluid TCP simulator: behavioural and invariant tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.simnet.link import Link, fabric_link
from repro.simnet.tcp import FluidTcpSimulator, TcpConfig


class TestConstruction:
    def test_dt_must_not_exceed_rtt(self, testbed_link):
        with pytest.raises(ValidationError):
            FluidTcpSimulator(testbed_link, dt_s=testbed_link.rtt_s * 2)

    def test_default_dt_is_quarter_rtt(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link)
        assert sim.dt_s == pytest.approx(testbed_link.rtt_s / 4)

    def test_add_flow_validation(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link)
        with pytest.raises(ValidationError):
            sim.add_flow(-1.0, 1e6)
        with pytest.raises(ValidationError):
            sim.add_flow(0.0, 0.0)

    def test_add_client_splits_evenly(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link)
        ids = sim.add_client(0.0, 1e9, parallel_flows=4, client_id=3)
        assert len(ids) == 4
        assert sim.flow_count == 4

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            TcpConfig(rto_min_s=1.0, rto_max_s=0.5)
        with pytest.raises(ValidationError):
            TcpConfig(initial_cwnd_segments=0)


class TestEmptyAndSingleFlow:
    def test_no_flows(self, testbed_link):
        res = FluidTcpSimulator(testbed_link).run()
        assert res.flows == []
        assert res.end_time_s == 0.0

    def test_single_small_flow_completes(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=0)
        sim.add_flow(0.0, 10e6)  # 10 MB
        res = sim.run()
        assert res.all_completed
        (f,) = res.flows
        # 10 MB needs some slow-start RTTs but well under a second.
        assert 0.02 < f.duration_s < 1.0

    def test_single_bulk_flow_near_line_rate(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=0)
        sim.add_flow(0.0, 0.5e9)
        res = sim.run()
        (f,) = res.flows
        # Theoretical floor 0.16 s; TCP ramp-up puts it in [0.16, 0.6].
        assert 0.16 <= f.duration_s < 0.6

    def test_delayed_start_respected(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=0)
        sim.add_flow(2.0, 10e6)
        res = sim.run()
        (f,) = res.flows
        assert f.end_s > 2.0
        assert f.start_s == pytest.approx(2.0)

    def test_bytes_accounted(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=0)
        sim.add_flow(0.0, 0.5e9)
        res = sim.run()
        assert res.flows[0].bytes_sent == pytest.approx(0.5e9, rel=1e-6)


class TestConservationAndInvariants:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_link_bytes_match_flow_bytes(self, testbed_link, seed):
        sim = FluidTcpSimulator(testbed_link, seed=seed)
        for c in range(3):
            sim.add_client(float(c) * 0.5, 0.2e9, 4, client_id=c)
        res = sim.run()
        flow_bytes = sum(f.bytes_sent for f in res.flows)
        link_bytes = sum(s.bytes_sent for s in res.link_samples)
        assert flow_bytes == pytest.approx(link_bytes, rel=1e-6)

    def test_throughput_never_exceeds_capacity(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=1)
        for c in range(8):
            sim.add_client(0.0, 0.5e9, 4, client_id=c)
        res = sim.run()
        cap = testbed_link.capacity_bytes_per_s
        for s in res.link_samples:
            assert s.throughput_bytes_per_s <= cap * (1 + 1e-9)

    def test_queue_bounded_by_buffer(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=1)
        for c in range(8):
            sim.add_client(0.0, 0.5e9, 8, client_id=c)
        res = sim.run()
        for s in res.link_samples:
            assert s.queue_bytes <= testbed_link.buffer_bytes * (1 + 1e-9)

    def test_deterministic_for_seed(self, testbed_link):
        def run(seed):
            sim = FluidTcpSimulator(testbed_link, seed=seed)
            for c in range(4):
                sim.add_client(float(c), 0.5e9, 4, client_id=c)
            return [f.end_s for f in sim.run().flows]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_fct_at_least_transmission_delay(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=0)
        sim.add_flow(0.0, 0.5e9)
        res = sim.run()
        assert res.flows[0].duration_s >= testbed_link.transmission_delay_s(0.5e9)


class TestCongestionBehaviour:
    def test_overload_stretches_fct(self, testbed_link):
        """Offered load > capacity must produce much larger worst FCT."""
        def max_fct(clients_per_s):
            sim = FluidTcpSimulator(testbed_link, seed=1)
            cid = 0
            for sec in range(5):
                for _ in range(clients_per_s):
                    sim.add_client(float(sec), 0.5e9, 4, client_id=cid)
                    cid += 1
            return sim.run(max_time_s=120).max_client_completion_s()

        light, heavy = max_fct(1), max_fct(8)
        assert heavy > 4 * light

    def test_loss_events_under_contention(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=1)
        for c in range(8):
            sim.add_client(0.0, 0.5e9, 4, client_id=c)
        res = sim.run()
        assert sum(f.loss_events for f in res.flows) > 0

    def test_tiny_buffer_forces_timeouts(self):
        """A shallow buffer plus many flows drives windows below the
        fast-retransmit floor, triggering RTO stalls."""
        link = Link(capacity_gbps=25.0, rtt_s=0.016, buffer_bdp=0.05)
        sim = FluidTcpSimulator(link, seed=3)
        for c in range(8):
            sim.add_client(0.0, 0.25e9, 8, client_id=c)
        res = sim.run(max_time_s=120)
        assert sum(f.timeout_events for f in res.flows) > 0

    def test_max_time_leaves_flows_incomplete(self, testbed_link):
        sim = FluidTcpSimulator(testbed_link, seed=0)
        sim.add_flow(0.0, 100e9)  # 100 GB cannot finish in 1 s
        res = sim.run(max_time_s=1.0)
        assert not res.all_completed
        assert res.flows[0].bytes_sent < 100e9

    def test_fair_share_between_equal_flows(self, testbed_link):
        """Two identical simultaneous flows finish within ~25 % of each
        other (loss randomness allows some spread)."""
        sim = FluidTcpSimulator(testbed_link, seed=2)
        sim.add_flow(0.0, 0.5e9, client_id=0)
        sim.add_flow(0.0, 0.5e9, client_id=1)
        res = sim.run()
        d0, d1 = (f.duration_s for f in res.flows)
        assert abs(d0 - d1) / max(d0, d1) < 0.25
