"""Flow records and simulation-result views."""

from __future__ import annotations

import math

import pytest

from repro.errors import ValidationError
from repro.simnet.records import FlowRecord, LinkSample, SimulationResult


def flow(fid=0, cid=0, start=0.0, end=1.0, size=1e6, sent=1e6, losses=0, timeouts=0):
    return FlowRecord(
        flow_id=fid,
        client_id=cid,
        start_s=start,
        end_s=end,
        size_bytes=size,
        bytes_sent=sent,
        loss_events=losses,
        timeout_events=timeouts,
    )


class TestFlowRecord:
    def test_duration(self):
        assert flow(start=1.0, end=3.5).duration_s == pytest.approx(2.5)

    def test_incomplete_flow(self):
        f = flow(end=math.nan)
        assert not f.completed
        assert math.isnan(f.duration_s)

    def test_end_before_start_rejected(self):
        with pytest.raises(ValidationError):
            flow(start=2.0, end=1.0)

    def test_zero_size_rejected(self):
        with pytest.raises(ValidationError):
            flow(size=0.0)


class TestLinkSample:
    def test_throughput(self):
        s = LinkSample(time_s=0.0, interval_s=0.1, bytes_sent=1e8,
                       queue_bytes=0.0, active_flows=4)
        assert s.throughput_bytes_per_s == pytest.approx(1e9)


class TestSimulationResult:
    def test_client_completion_uses_last_flow(self):
        # A client with two parallel flows completes at the later one.
        res = SimulationResult(flows=[
            flow(fid=0, cid=7, start=1.0, end=2.0),
            flow(fid=1, cid=7, start=1.0, end=4.0),
        ])
        times = res.client_completion_times_s()
        assert times == {7: pytest.approx(3.0)}

    def test_client_with_incomplete_flow_omitted(self):
        res = SimulationResult(flows=[
            flow(fid=0, cid=1, end=2.0),
            flow(fid=1, cid=1, end=math.nan),
            flow(fid=2, cid=2, end=5.0),
        ])
        assert set(res.client_completion_times_s()) == {2}

    def test_max_client_completion(self):
        res = SimulationResult(flows=[
            flow(fid=0, cid=0, start=0.0, end=1.0),
            flow(fid=1, cid=1, start=0.0, end=9.0),
        ])
        assert res.max_client_completion_s() == pytest.approx(9.0)

    def test_max_client_none_when_nothing_finished(self):
        res = SimulationResult(flows=[flow(end=math.nan)])
        assert res.max_client_completion_s() is None

    def test_completed_partition(self):
        res = SimulationResult(flows=[flow(end=1.0), flow(end=math.nan)])
        assert len(res.completed_flows) == 1
        assert len(res.incomplete_flows) == 1
        assert not res.all_completed

    def test_mean_utilization(self):
        res = SimulationResult(
            flows=[],
            link_samples=[
                LinkSample(0.0, 1.0, 5e8, 0.0, 1),
                LinkSample(1.0, 1.0, 10e8, 0.0, 1),
            ],
            capacity_bytes_per_s=1e9,
        )
        assert res.mean_utilization() == pytest.approx(0.75)

    def test_mean_utilization_empty(self):
        assert SimulationResult().mean_utilization() == 0.0
