"""Experiment specs and the Table-2 sweep."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.iperfsim.spec import (
    ExperimentSpec,
    SpawnStrategy,
    TABLE2_CONCURRENCY,
    TABLE2_PARALLEL_FLOWS,
    TABLE2_ROWS,
    iter_sweep_grid,
    table2_sweep,
)
from repro.simnet.faults import FaultEvent
from repro.simnet.link import fabric_link
from repro.simnet.topology import cross_facility_testbed


class TestSpec:
    def test_defaults_match_table2(self):
        spec = ExperimentSpec(concurrency=4, parallel_flows=2)
        assert spec.transfer_size_gb == 0.5
        assert spec.duration_s == 10.0
        assert spec.strategy is SpawnStrategy.BATCH

    def test_offered_load(self):
        # 4 clients/s x 0.5 GB = 2 GB/s = 16 Gbps.
        spec = ExperimentSpec(concurrency=4, parallel_flows=2)
        assert spec.offered_load_gbps() == pytest.approx(16.0)

    def test_offered_utilization(self):
        spec = ExperimentSpec(concurrency=4, parallel_flows=2)
        assert spec.offered_utilization(fabric_link()) == pytest.approx(0.64)

    def test_can_exceed_one(self):
        spec = ExperimentSpec(concurrency=8, parallel_flows=2)
        assert spec.offered_utilization() == pytest.approx(1.28)

    def test_totals(self):
        spec = ExperimentSpec(concurrency=8, parallel_flows=2)
        assert spec.total_clients == 80
        assert spec.total_bytes == pytest.approx(80 * 0.5e9)

    def test_label(self):
        spec = ExperimentSpec(concurrency=3, parallel_flows=8)
        assert spec.label() == "batch-c3-p8"

    @pytest.mark.parametrize("field,value", [
        ("concurrency", 0),
        ("parallel_flows", 0),
        ("transfer_size_gb", 0.0),
        ("duration_s", -1.0),
        ("spawn_jitter_s", -0.1),
    ])
    def test_validation(self, field, value):
        kwargs = dict(concurrency=1, parallel_flows=2)
        kwargs[field] = value
        with pytest.raises(ValidationError):
            ExperimentSpec(**kwargs)


class TestRoutedSpec:
    def _spec(self, **kwargs):
        return ExperimentSpec(
            concurrency=4,
            parallel_flows=2,
            topology=cross_facility_testbed(),
            route=("edge", "hpc"),
            **kwargs,
        )

    def test_topology_and_route_come_together(self):
        with pytest.raises(ValidationError, match="come together"):
            ExperimentSpec(
                concurrency=1, parallel_flows=2,
                topology=cross_facility_testbed(),
            )
        with pytest.raises(ValidationError, match="come together"):
            ExperimentSpec(
                concurrency=1, parallel_flows=2, route=("edge", "hpc")
            )

    def test_unknown_hosts_fail_at_construction(self):
        with pytest.raises(ValidationError, match="unknown host"):
            ExperimentSpec(
                concurrency=1, parallel_flows=2,
                topology=cross_facility_testbed(), route=("edge", "mars"),
            )

    def test_resolved_route(self):
        route = self._spec().resolved_route()
        assert route is not None
        assert route.segments == ("edge-dtn", "dtn-wan", "wan-hpc")
        single = ExperimentSpec(concurrency=1, parallel_flows=2)
        assert single.resolved_route() is None

    def test_offered_utilization_uses_route_bottleneck(self):
        # 4 x 0.5 GB/s = 16 Gbps over the 25 Gbps WAN bottleneck — the
        # passed link (even a fat one) must be ignored for routed specs.
        from repro.simnet.link import Link

        spec = self._spec()
        fat = Link(capacity_gbps=100.0, rtt_s=0.016)
        assert spec.offered_utilization(fat) == pytest.approx(16.0 / 25.0)

    def test_fault_defaults_to_bottleneck_segment(self):
        sched = (FaultEvent(1.0, 2.0, 0.0),)
        spec = self._spec(faults=sched)
        assert spec.link_fault_schedules() == ((), sched, ())

    def test_fault_link_targets_named_segment_either_orientation(self):
        sched = (FaultEvent(1.0, 2.0, 0.0),)
        spec = self._spec(faults=sched, fault_link="dtn-edge")
        assert spec.link_fault_schedules() == (sched, (), ())

    def test_fault_link_off_route_fails_at_construction(self):
        with pytest.raises(ValidationError, match="not a segment"):
            self._spec(fault_link="edge-wan")

    def test_fault_link_without_topology_rejected(self):
        with pytest.raises(ValidationError, match="needs"):
            ExperimentSpec(
                concurrency=1, parallel_flows=2, fault_link="dtn-wan"
            )

    def test_link_fault_schedules_needs_topology(self):
        with pytest.raises(ValidationError, match="topology"):
            ExperimentSpec(concurrency=1, parallel_flows=2).link_fault_schedules()

    def test_label_carries_route(self):
        assert self._spec().label() == "batch-c4-p2-edge-hpc"
        faulted = self._spec(faults=(FaultEvent(1.0, 2.0, 0.0),))
        assert faulted.label() == "batch-c4-p2-edge-hpc-fault"

    def test_routed_table2_sweep(self):
        specs = table2_sweep(
            topology=cross_facility_testbed(), route=("edge", "hpc")
        )
        assert len(specs) == 24
        assert all(s.resolved_route() is not None for s in specs)


class TestSweep:
    def test_24_experiments(self):
        # Table 2: "Total experiments | 24 | Full parameter sweep".
        assert len(table2_sweep()) == 24

    def test_grid_coverage(self):
        specs = table2_sweep()
        combos = {(s.concurrency, s.parallel_flows) for s in specs}
        assert combos == {
            (c, p) for c in TABLE2_CONCURRENCY for p in TABLE2_PARALLEL_FLOWS
        }

    def test_iter_grid_matches(self):
        assert len(list(iter_sweep_grid())) == 24

    def test_strategy_propagates(self):
        specs = table2_sweep(strategy=SpawnStrategy.SCHEDULED)
        assert all(s.strategy is SpawnStrategy.SCHEDULED for s in specs)

    def test_table2_rows_content(self):
        names = [r[0] for r in TABLE2_ROWS]
        assert "Concurrency" in names
        assert "Transfer size" in names
        assert ("Total experiments", "24", "Full parameter sweep") in TABLE2_ROWS
