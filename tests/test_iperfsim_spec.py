"""Experiment specs and the Table-2 sweep."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.iperfsim.spec import (
    ExperimentSpec,
    SpawnStrategy,
    TABLE2_CONCURRENCY,
    TABLE2_PARALLEL_FLOWS,
    TABLE2_ROWS,
    iter_sweep_grid,
    table2_sweep,
)
from repro.simnet.link import fabric_link


class TestSpec:
    def test_defaults_match_table2(self):
        spec = ExperimentSpec(concurrency=4, parallel_flows=2)
        assert spec.transfer_size_gb == 0.5
        assert spec.duration_s == 10.0
        assert spec.strategy is SpawnStrategy.BATCH

    def test_offered_load(self):
        # 4 clients/s x 0.5 GB = 2 GB/s = 16 Gbps.
        spec = ExperimentSpec(concurrency=4, parallel_flows=2)
        assert spec.offered_load_gbps() == pytest.approx(16.0)

    def test_offered_utilization(self):
        spec = ExperimentSpec(concurrency=4, parallel_flows=2)
        assert spec.offered_utilization(fabric_link()) == pytest.approx(0.64)

    def test_can_exceed_one(self):
        spec = ExperimentSpec(concurrency=8, parallel_flows=2)
        assert spec.offered_utilization() == pytest.approx(1.28)

    def test_totals(self):
        spec = ExperimentSpec(concurrency=8, parallel_flows=2)
        assert spec.total_clients == 80
        assert spec.total_bytes == pytest.approx(80 * 0.5e9)

    def test_label(self):
        spec = ExperimentSpec(concurrency=3, parallel_flows=8)
        assert spec.label() == "batch-c3-p8"

    @pytest.mark.parametrize("field,value", [
        ("concurrency", 0),
        ("parallel_flows", 0),
        ("transfer_size_gb", 0.0),
        ("duration_s", -1.0),
        ("spawn_jitter_s", -0.1),
    ])
    def test_validation(self, field, value):
        kwargs = dict(concurrency=1, parallel_flows=2)
        kwargs[field] = value
        with pytest.raises(ValidationError):
            ExperimentSpec(**kwargs)


class TestSweep:
    def test_24_experiments(self):
        # Table 2: "Total experiments | 24 | Full parameter sweep".
        assert len(table2_sweep()) == 24

    def test_grid_coverage(self):
        specs = table2_sweep()
        combos = {(s.concurrency, s.parallel_flows) for s in specs}
        assert combos == {
            (c, p) for c in TABLE2_CONCURRENCY for p in TABLE2_PARALLEL_FLOWS
        }

    def test_iter_grid_matches(self):
        assert len(list(iter_sweep_grid())) == 24

    def test_strategy_propagates(self):
        specs = table2_sweep(strategy=SpawnStrategy.SCHEDULED)
        assert all(s.strategy is SpawnStrategy.SCHEDULED for s in specs)

    def test_table2_rows_content(self):
        names = [r[0] for r in TABLE2_ROWS]
        assert "Concurrency" in names
        assert "Transfer size" in names
        assert ("Total experiments", "24", "Full parameter sweep") in TABLE2_ROWS
