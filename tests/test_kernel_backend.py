"""Pluggable kernel-execution backends (``repro.core.backend``).

Four contracts are pinned:

1. *resolution & degradation* — explicit name > ``REPRO_KERNEL_BACKEND``
   env var > numpy; ``"auto"`` silently picks the fastest importable
   backend; an explicitly requested but missing backend degrades to
   numpy with ONE actionable RuntimeWarning naming the ``accel`` extra;
   unknown names are ValidationErrors,
2. *bit identity* — every derived column a compiled backend produces is
   byte-for-byte equal (values **and** dtype) to the pure-numpy
   reference registry, across broadcast shapes, degenerate inputs
   (``C = 0``, ``r < 1``, ``theta = 1``) and the SSS-join context path.
   The battery parametrizes over whichever compiled backends are
   importable and skips the rest, so the dep-free tier-1 leg stays
   green while the accel CI job executes the real compiled kernels,
3. *overlapped streaming* — the double-buffered writer thread of
   ``run_model_sweep(out=..., overlap_io=True)`` produces shard files
   and a manifest byte-identical to the synchronous loop for any block
   size, and re-raises writer-side failures on the caller's thread,
4. *mmap shard reads & manifest cache* — memory-mapped reads of
   uncompressed shards equal ``np.load`` exactly (falling back for
   compressed/JSON columns, raising actionable errors on torn files),
   and the analysis-side reader cache reuses one validated reader per
   on-disk manifest while invalidating on rewrite.
"""

from __future__ import annotations

import sys
import types
import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.core as core_pkg
from repro.analysis import _tables
from repro.core import backend, kernel
from repro.core.backend import (
    BACKEND_ENV_VAR,
    KERNEL_BACKENDS,
    available_backends,
    backend_columns,
    backend_ready,
    resolve_backend,
)
from repro.core.parameters import aps_to_alcf_defaults
from repro.errors import ValidationError
from repro.sweep import (
    Axis,
    ShardReader,
    ShardWriter,
    SweepSpec,
    open_shards,
    run_model_sweep,
)
from repro.sweep.shards import _stored_member_offsets

BASE = aps_to_alcf_defaults()

#: Backends with a compiled implementation (everything but the numpy
#: reference).  Bit-identity tests parametrize over these with a skipif
#: per backend, so each runs wherever its dependency is importable.
COMPILED = tuple(name for name in KERNEL_BACKENDS if name != "numpy")


def _compiled_param(name: str) -> "pytest.param":
    return pytest.param(
        name,
        marks=pytest.mark.skipif(
            not backend_ready(name),
            reason=f"compiled backend {name!r} is not installed",
        ),
    )


COMPILED_PARAMS = [_compiled_param(name) for name in COMPILED]


@pytest.fixture
def clean_state(monkeypatch):
    """Fresh warn-once/memo state and no env override, restored after."""
    monkeypatch.setattr(backend, "_WARNED", set())
    monkeypatch.setattr(backend, "_COLUMN_IMPLS", {})
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    return monkeypatch


def _all_available(monkeypatch) -> None:
    monkeypatch.setattr(backend, "_module_available", lambda module: True)


def _none_available(monkeypatch) -> None:
    monkeypatch.setattr(backend, "_module_available", lambda module: False)


# ----------------------------------------------------------------------
# Resolution precedence
# ----------------------------------------------------------------------
class TestResolution:
    def test_default_is_numpy(self, clean_state):
        assert resolve_backend(None) == "numpy"

    def test_explicit_numpy_always_resolves(self, clean_state):
        assert resolve_backend("numpy") == "numpy"

    def test_env_var_consulted_when_no_explicit_name(self, clean_state):
        _all_available(clean_state)
        clean_state.setenv(BACKEND_ENV_VAR, "numexpr")
        assert resolve_backend(None) == "numexpr"

    def test_explicit_name_beats_env_var(self, clean_state):
        _all_available(clean_state)
        clean_state.setenv(BACKEND_ENV_VAR, "numexpr")
        assert resolve_backend("numpy") == "numpy"

    def test_empty_env_var_means_numpy(self, clean_state):
        clean_state.setenv(BACKEND_ENV_VAR, "")
        assert resolve_backend(None) == "numpy"

    def test_name_normalised(self, clean_state):
        assert resolve_backend("  NumPy ") == "numpy"

    def test_auto_prefers_fastest_available(self, clean_state):
        _all_available(clean_state)
        assert resolve_backend("auto") == KERNEL_BACKENDS[0]
        clean_state.setattr(
            backend, "_module_available", lambda module: module == "numexpr"
        )
        assert resolve_backend("auto") == "numexpr"

    def test_auto_falls_back_to_numpy_silently(self, clean_state):
        _none_available(clean_state)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("auto") == "numpy"

    def test_auto_via_env_var(self, clean_state):
        _none_available(clean_state)
        clean_state.setenv(BACKEND_ENV_VAR, "auto")
        assert resolve_backend(None) == "numpy"

    def test_unknown_name_rejected(self, clean_state):
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            resolve_backend("cython")

    def test_unknown_env_var_value_rejected(self, clean_state):
        clean_state.setenv(BACKEND_ENV_VAR, "gpu")
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            resolve_backend(None)

    def test_available_backends_ends_with_numpy(self, clean_state):
        _none_available(clean_state)
        assert available_backends() == ("numpy",)
        _all_available(clean_state)
        assert available_backends() == KERNEL_BACKENDS
        assert available_backends()[-1] == "numpy"

    def test_backend_columns_numpy_is_empty_override_map(self):
        assert backend_columns("numpy") == {}

    def test_backend_columns_unknown_rejected(self):
        with pytest.raises(ValidationError, match="unknown kernel backend"):
            backend_columns("gpu")

    def test_numpy_always_ready(self):
        assert backend_ready("numpy")


# ----------------------------------------------------------------------
# Missing-dependency degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_missing_dep_warns_once_naming_accel_extra(self, clean_state):
        _none_available(clean_state)
        with pytest.warns(RuntimeWarning, match=r"repro\[accel\]") as rec:
            assert resolve_backend("numba") == "numpy"
        assert len(rec) == 1
        assert "numba" in str(rec[0].message)
        # Second request: already warned, degrades silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba") == "numpy"

    def test_each_backend_warns_independently(self, clean_state):
        _none_available(clean_state)
        with pytest.warns(RuntimeWarning, match="numba"):
            resolve_backend("numba")
        with pytest.warns(RuntimeWarning, match="numexpr"):
            resolve_backend("numexpr")

    def test_missing_dep_not_ready(self, clean_state):
        _none_available(clean_state)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # backend_ready never warns
            assert not backend_ready("numba")
            assert not backend_ready("numexpr")

    def test_build_failure_degrades_to_numpy(self, clean_state):
        _all_available(clean_state)
        broken = types.ModuleType("repro.core._backend_numba")
        broken.build_columns = lambda: (_ for _ in ()).throw(
            RuntimeError("jit exploded")
        )
        clean_state.setitem(
            sys.modules, "repro.core._backend_numba", broken
        )
        clean_state.setattr(core_pkg, "_backend_numba", broken, raising=False)
        with pytest.warns(RuntimeWarning, match="failed to initialise"):
            assert backend_columns("numba") == {}
        # Memoised: the broken build is not retried, and stays silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert backend_columns("numba") == {}
            assert not backend_ready("numba")

    def test_from_columns_degrades_block_to_numpy(self, clean_state):
        _none_available(clean_state)
        with pytest.warns(RuntimeWarning, match=r"repro\[accel\]"):
            block = kernel.ParamBlock.from_columns(
                {"bandwidth_gbps": np.array([1.0, 10.0])},
                base=BASE,
                backend="numba",
            )
        assert block.backend == "numpy"
        # The degraded block still evaluates (on the reference kernels).
        out = kernel.compute_columns(block, ("speedup",))
        assert out["speedup"].shape == (2,)

    def test_from_columns_reads_env_var(self, clean_state):
        _all_available(clean_state)
        clean_state.setenv(BACKEND_ENV_VAR, "numexpr")
        block = kernel.ParamBlock.from_columns(
            {"bandwidth_gbps": np.array([1.0, 10.0])}, base=BASE
        )
        assert block.backend == "numexpr"

    def test_streamed_sweep_warns_once_not_once_per_block(
        self, clean_state, tmp_path
    ):
        _none_available(clean_state)
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 12))
        with pytest.warns(RuntimeWarning, match=r"repro\[accel\]") as rec:
            run_model_sweep(
                spec, base=BASE, out=tmp_path / "s", block_size=3,
                backend="numba",
            )
        assert len([w for w in rec if w.category is RuntimeWarning]) == 1


# ----------------------------------------------------------------------
# Cross-backend bit identity
# ----------------------------------------------------------------------
#: Value ranges per sweep axis; deliberately wide (five decades of
#: complexity, sub-Gbps to 400 Gbps links, r on both sides of 1 so the
#: break-even margins flip sign and exercise the nan/inf branches).
_AXIS_RANGES = {
    "s_unit_gb": (1e-3, 100.0),
    "complexity_flop_per_gb": (0.0, 1e14),
    "r_local_tflops": (0.1, 200.0),
    "bandwidth_gbps": (0.05, 400.0),
    "alpha": (0.05, 1.0),
    "r": (0.2, 500.0),
    "theta": (1.0, 8.0),
}


class _FakeCurve:
    """Duck-typed SSS curve (sorted utilisations), as in the kernel tests."""

    def __init__(self, utilizations, sss_values):
        self.utilizations = np.asarray(utilizations, dtype=float)
        self.sss_values = np.asarray(sss_values, dtype=float)


CURVE = _FakeCurve([0.2, 0.5, 0.8, 1.0, 1.3], [1.0, 2.0, 7.5, 30.0, 40.0])


def _random_columns(rng: np.random.Generator, n: int, with_util: bool = False):
    """Random sweep columns mixing length-n and broadcast length-1 axes,
    with degenerate values (C = 0, theta exactly 1) salted in."""
    cols = {}
    for name, (lo, hi) in _AXIS_RANGES.items():
        m = n if rng.random() < 0.7 else 1
        vals = rng.uniform(lo, hi, m)
        if name == "complexity_flop_per_gb" and rng.random() < 0.3:
            vals[rng.random(m) < 0.5] = 0.0  # kappa -> inf, t_local -> 0
        if name == "theta" and rng.random() < 0.3:
            vals[:] = 1.0  # streaming == file strategy ties
        cols[name] = vals
    if with_util:
        # Stay inside the measured curve so the clamp warning never fires.
        cols["utilization"] = rng.uniform(0.2, 1.3, n)
    return cols


def _assert_bit_identical(want, got):
    assert set(want) == set(got)
    for col in want:
        assert got[col].dtype == want[col].dtype, col
        assert got[col].shape == want[col].shape, col
        # Byte comparison: exact to the last bit, NaN-safe.
        assert got[col].tobytes() == want[col].tobytes(), col


@pytest.mark.parametrize("name", COMPILED_PARAMS)
class TestBitIdentity:
    """Every compiled backend reproduces the numpy reference registry
    bit for bit (these skip where the dependency is absent and run in
    the accel CI job)."""

    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 64))
    def test_all_kernel_columns(self, name, seed, n):
        rng = np.random.default_rng(seed)
        cols = _random_columns(rng, n)
        ref = kernel.ParamBlock.from_columns(
            cols, base=BASE, n=n, backend="numpy"
        )
        alt = kernel.ParamBlock.from_columns(cols, base=BASE, n=n, backend=name)
        assert alt.backend == name
        _assert_bit_identical(
            kernel.compute_columns(ref, kernel.KERNEL_COLUMNS),
            kernel.compute_columns(alt, kernel.KERNEL_COLUMNS),
        )

    @settings(
        deadline=None,
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(0, 2**32 - 1), n=st.integers(1, 64))
    def test_sss_join_context_path(self, name, seed, n):
        rng = np.random.default_rng(seed)
        cols = _random_columns(rng, n, with_util=True)
        context = {"sss_curve": CURVE}
        metrics = kernel.KERNEL_COLUMNS + kernel.CONTEXT_COLUMNS
        ref = kernel.ParamBlock.from_columns(
            cols, base=BASE, n=n, context=context, backend="numpy"
        )
        alt = kernel.ParamBlock.from_columns(
            cols, base=BASE, n=n, context=context, backend=name
        )
        _assert_bit_identical(
            kernel.compute_columns(ref, metrics),
            kernel.compute_columns(alt, metrics),
        )

    def test_degenerate_inputs(self, name):
        """Deterministic extremes: C = 0 (t_local 0, kappa inf), r <= 1
        (negative break-even margins: nan/inf columns), theta = 1."""
        cols = {
            "complexity_flop_per_gb": np.array([0.0, 0.0, 1e12, 1e14]),
            "r": np.array([0.5, 1.0, 2.0, 400.0]),
            "theta": np.array([1.0, 1.0, 1.0, 4.0]),
            "bandwidth_gbps": np.array([0.1, 1.0, 25.0, 400.0]),
        }
        ref = kernel.ParamBlock.from_columns(
            cols, base=BASE, n=4, backend="numpy"
        )
        alt = kernel.ParamBlock.from_columns(cols, base=BASE, n=4, backend=name)
        want = kernel.compute_columns(ref, kernel.KERNEL_COLUMNS)
        # The degenerate rows really do exercise the non-finite paths...
        assert np.isinf(want["kappa"][0]) and want["t_local"][0] == 0.0
        assert np.isnan(want["break_even_theta"][0])
        # ...and the compiled backend reproduces them bit for bit.
        _assert_bit_identical(
            want, kernel.compute_columns(alt, kernel.KERNEL_COLUMNS)
        )

    def test_streamed_sweep_shards_match_numpy_backend(self, name, tmp_path):
        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 11),
            Axis.geomspace("complexity_flop_per_gb", 1e10, 1e14, 5),
        )
        ref = run_model_sweep(
            spec, base=BASE, out=tmp_path / "ref", block_size=16,
            backend="numpy",
        )
        alt = run_model_sweep(
            spec, base=BASE, out=tmp_path / "alt", block_size=16, backend=name
        )
        for col in ref.column_names:
            a, b = ref.column(col), alt.column(col)
            assert a.dtype == b.dtype, col
            assert a.tobytes() == b.tobytes(), col


# ----------------------------------------------------------------------
# IO/compute-overlapped streaming
# ----------------------------------------------------------------------
def _shard_files(directory):
    return sorted(p.name for p in directory.iterdir())


class TestOverlappedStreaming:
    @pytest.mark.parametrize("block_size", [1, 7, 64])
    def test_bit_identical_to_synchronous(self, tmp_path, block_size):
        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 9),
            Axis.geomspace("s_unit_gb", 0.5, 50.0, 5),
        )
        sync_dir, over_dir = tmp_path / "sync", tmp_path / "overlap"
        run_model_sweep(
            spec, base=BASE, out=sync_dir, block_size=block_size,
            overlap_io=False,
        )
        run_model_sweep(
            spec, base=BASE, out=over_dir, block_size=block_size,
            overlap_io=True,
        )
        assert _shard_files(sync_dir) == _shard_files(over_dir)
        for fname in _shard_files(sync_dir):
            a = (sync_dir / fname).read_bytes()
            b = (over_dir / fname).read_bytes()
            assert a == b, fname

    def test_overlap_is_default_and_equals_in_memory(self, tmp_path):
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 23))
        table = run_model_sweep(spec, base=BASE)
        sharded = run_model_sweep(
            spec, base=BASE, out=tmp_path / "s", block_size=5
        )
        for col in table.columns:
            np.testing.assert_array_equal(
                table.column(col), sharded.column(col), err_msg=col
            )

    def test_writer_failure_reraised_without_hanging(
        self, tmp_path, monkeypatch
    ):
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 30))
        real_append = ShardWriter.append
        calls = []

        def flaky_append(self, block):
            if len(calls) >= 2:
                raise OSError("disk full")
            calls.append(1)
            return real_append(self, block)

        monkeypatch.setattr(ShardWriter, "append", flaky_append)
        with pytest.raises(OSError, match="disk full"):
            run_model_sweep(
                spec, base=BASE, out=tmp_path / "s", block_size=3,
                overlap_io=True,
            )

    def test_producer_side_validation_error_still_raises(self, tmp_path):
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 9))
        with pytest.raises(ValidationError, match="unknown sweep metrics"):
            run_model_sweep(
                spec, base=BASE, metrics=("nope",), out=tmp_path / "s"
            )


# ----------------------------------------------------------------------
# Memory-mapped shard reads
# ----------------------------------------------------------------------
class TestMmapShardReads:
    def _write(self, directory, compress=False, n_bw=21, block=8):
        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, n_bw)
        )
        run_model_sweep(
            spec, base=BASE, out=directory, block_size=block,
            compress=compress,
        )
        return directory

    def test_uncompressed_members_are_mappable(self, tmp_path):
        d = self._write(tmp_path / "s")
        reader = ShardReader(d)
        shard_path = d / reader.shards[0]["file"]
        offsets = _stored_member_offsets(shard_path)
        assert offsets is not None
        assert set(offsets) == {c + ".npy" for c in reader.column_names}

    def test_mmap_reads_equal_npload_bit_for_bit(self, tmp_path):
        d = self._write(tmp_path / "s")
        mapped = ShardReader(d, mmap=True)
        copied = ShardReader(d, mmap=False)
        for i in range(mapped.n_shards):
            a, b = mapped.read_shard(i), copied.read_shard(i)
            for col in b:
                assert a[col].dtype == b[col].dtype, col
                assert a[col].tobytes() == b[col].tobytes(), col

    def test_mapped_arrays_are_readonly_views(self, tmp_path):
        d = self._write(tmp_path / "s")
        block = ShardReader(d).read_shard(0)
        arr = block["bandwidth_gbps"]
        assert not arr.flags.writeable
        with pytest.raises(ValueError):
            arr[0] = 0.0
        # The historical mmap=False path keeps returning owned copies.
        owned = ShardReader(d, mmap=False).read_shard(0)["bandwidth_gbps"]
        owned[0] = 0.0  # writable

    def test_compressed_shards_fall_back_and_agree(self, tmp_path):
        d = self._write(tmp_path / "s", compress=True)
        reader = ShardReader(d)
        shard_path = d / reader.shards[0]["file"]
        assert reader._stored_offsets(0, shard_path) is None
        plain = ShardReader(d, mmap=False)
        for i in range(reader.n_shards):
            a, b = reader.read_shard(i), plain.read_shard(i)
            for col in b:
                np.testing.assert_array_equal(a[col], b[col], err_msg=col)

    def test_json_columns_fall_back_per_column(self, tmp_path):
        with ShardWriter(tmp_path / "s", shard_size=4, axis_names=("x",)) as w:
            w.append(
                {"x": [1.0, 2.0, 3.0], "facility": ["aps", "lcls", "aps"]}
            )
        block = ShardReader(tmp_path / "s").read_shard(0)
        # Numeric column mapped, object column decoded via np.load.
        assert not block["x"].flags.writeable
        assert list(block["facility"]) == ["aps", "lcls", "aps"]

    def test_torn_shard_file_raises_actionable_error(self, tmp_path):
        d = self._write(tmp_path / "s")
        reader = ShardReader(d)
        shard_path = d / reader.shards[0]["file"]
        payload = shard_path.read_bytes()
        shard_path.write_bytes(payload[: len(payload) // 2])
        fresh = ShardReader(d)  # manifest still validates
        with pytest.raises(ValidationError, match="corrupt or truncated"):
            fresh.read_shard(0)

    def test_open_shards_forwards_mmap_flag(self, tmp_path):
        d = self._write(tmp_path / "s")
        assert open_shards(d).reader.mmap is True
        assert open_shards(d, mmap=False).reader.mmap is False


# ----------------------------------------------------------------------
# Analysis-side manifest/reader cache
# ----------------------------------------------------------------------
@pytest.fixture
def clear_reader_cache():
    with _tables._READER_CACHE_LOCK:
        _tables._READER_CACHE.clear()
    yield
    with _tables._READER_CACHE_LOCK:
        _tables._READER_CACHE.clear()


class TestManifestCache:
    def _sweep(self, directory, n_bw=9):
        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, n_bw)
        )
        run_model_sweep(spec, base=BASE, out=directory, block_size=4)
        return directory

    def test_same_directory_reuses_one_reader(
        self, tmp_path, clear_reader_cache
    ):
        d = self._sweep(tmp_path / "s")
        r1 = _tables._cached_reader(d)
        r2 = _tables._cached_reader(d)
        r3 = _tables._cached_reader(str(d))  # str and Path hit one entry
        r4 = _tables._cached_reader(d / "manifest.json")
        assert r1 is r2 is r3 is r4

    def test_load_sweep_table_routes_through_cache(
        self, tmp_path, clear_reader_cache
    ):
        d = self._sweep(tmp_path / "s")
        t1 = _tables.load_sweep_table(d)
        t2 = _tables.load_sweep_table(str(d))
        assert t1.reader is t2.reader
        np.testing.assert_array_equal(
            t1.column("bandwidth_gbps"), t2.column("bandwidth_gbps")
        )

    def test_rewritten_sweep_invalidates(self, tmp_path, clear_reader_cache):
        d = self._sweep(tmp_path / "s", n_bw=9)
        r1 = _tables._cached_reader(d)
        assert r1.n_rows == 9
        import shutil

        shutil.rmtree(d)
        self._sweep(d, n_bw=13)
        r2 = _tables._cached_reader(d)
        assert r2 is not r1
        assert r2.n_rows == 13
        # The stale same-path entry was purged, not just shadowed.
        with _tables._READER_CACHE_LOCK:
            same_path = [
                k for k in _tables._READER_CACHE if k[0] == str(
                    (d / "manifest.json").resolve()
                )
            ]
        assert len(same_path) == 1

    def test_cache_is_bounded(self, tmp_path, clear_reader_cache):
        for i in range(_tables._READER_CACHE_MAX + 3):
            self._sweep(tmp_path / f"s{i}", n_bw=3)
            _tables._cached_reader(tmp_path / f"s{i}")
        with _tables._READER_CACHE_LOCK:
            assert len(_tables._READER_CACHE) == _tables._READER_CACHE_MAX

    def test_missing_manifest_stays_uncached_and_actionable(
        self, tmp_path, clear_reader_cache
    ):
        with pytest.raises(ValidationError, match="manifest"):
            _tables._cached_reader(tmp_path / "nope")
        with _tables._READER_CACHE_LOCK:
            assert not _tables._READER_CACHE

    def test_reductions_share_reader_with_mapped_offsets(
        self, tmp_path, clear_reader_cache
    ):
        d = self._sweep(tmp_path / "s")
        t = _tables.load_sweep_table(d)
        t.column("speedup")
        # The cached reader accumulated per-shard offset tables the next
        # reduction reuses instead of re-parsing the zip directory.
        assert t.reader._member_offsets
        assert _tables.load_sweep_table(d).reader is t.reader
