"""Discrete-event engine semantics."""

from __future__ import annotations

import pytest

from repro.errors import ScheduleError, SimulationError
from repro.simnet.engine import AllOf, AnyOf, Environment, Event, Interrupt


class TestEnvironmentBasics:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_run_empty_returns_now(self):
        env = Environment()
        assert env.run() == 0.0

    def test_run_until_advances_clock_without_events(self):
        env = Environment()
        env.run(until=5.0)
        assert env.now == 5.0

    def test_timeout_fires_at_right_time(self):
        env = Environment()
        seen = []
        env.timeout(2.5).add_callback(lambda e: seen.append(env.now))
        env.run()
        assert seen == [2.5]

    def test_negative_timeout_rejected(self):
        with pytest.raises(ScheduleError):
            Environment().timeout(-1.0)


class TestProcesses:
    def test_delays_accumulate(self):
        env = Environment()
        log = []

        def proc(env):
            yield 1.0
            log.append(env.now)
            yield 2.0
            log.append(env.now)

        env.process(proc(env))
        env.run()
        assert log == [1.0, 3.0]

    def test_fifo_order_at_same_time(self):
        env = Environment()
        log = []

        def proc(env, name):
            yield 1.0
            log.append(name)

        env.process(proc(env, "first"))
        env.process(proc(env, "second"))
        env.run()
        assert log == ["first", "second"]

    def test_process_return_value(self):
        env = Environment()
        results = []

        def child(env):
            yield 1.0
            return 42

        def parent(env):
            value = yield env.process(child(env))
            results.append(value)

        env.process(parent(env))
        env.run()
        assert results == [42]

    def test_waiting_on_event_value(self):
        env = Environment()
        gate = env.event()
        got = []

        def waiter(env):
            value = yield gate
            got.append((env.now, value))

        def opener(env):
            yield 3.0
            gate.succeed("open")

        env.process(waiter(env))
        env.process(opener(env))
        env.run()
        assert got == [(3.0, "open")]

    def test_yielding_garbage_raises(self):
        env = Environment()

        def bad(env):
            yield "not an event"

        env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()

    def test_negative_delay_raises(self):
        env = Environment()

        def bad(env):
            yield -1.0

        env.process(bad(env))
        with pytest.raises(ScheduleError):
            env.run()

    def test_run_until_stops_mid_simulation(self):
        env = Environment()
        log = []

        def proc(env):
            yield 1.0
            log.append("a")
            yield 10.0
            log.append("b")

        env.process(proc(env))
        env.run(until=5.0)
        assert log == ["a"]
        assert env.now == 5.0
        env.run()  # resume to completion
        assert log == ["a", "b"]

    def test_interrupt(self):
        env = Environment()
        log = []

        def victim(env):
            try:
                yield 100.0
            except Interrupt as exc:
                log.append((env.now, exc.cause))

        def attacker(env, proc):
            yield 2.0
            proc.interrupt("stop")

        p = env.process(victim(env))
        env.process(attacker(env, p))
        env.run()
        assert log == [(2.0, "stop")]

    def test_max_events_guard(self):
        env = Environment()

        def spinner(env):
            while True:
                yield 0.0

        env.process(spinner(env))
        with pytest.raises(SimulationError):
            env.run(max_events=100)


class TestEvents:
    def test_double_succeed_raises(self):
        env = Environment()
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_callback_after_processed_fires_immediately(self):
        env = Environment()
        ev = env.event()
        ev.succeed("v")
        env.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]


class TestCombinators:
    def test_all_of_waits_for_every_child(self):
        env = Environment()
        got = []

        def waiter(env):
            values = yield AllOf(env, [env.timeout(1.0), env.timeout(3.0)])
            got.append((env.now, len(values)))

        env.process(waiter(env))
        env.run()
        assert got == [(3.0, 2)]

    def test_all_of_empty_succeeds_immediately(self):
        env = Environment()
        ev = AllOf(env, [])
        env.run()
        assert ev.triggered and ev.value == []

    def test_any_of_takes_first(self):
        env = Environment()
        got = []

        def waiter(env):
            yield AnyOf(env, [env.timeout(5.0), env.timeout(1.0)])
            got.append(env.now)

        env.process(waiter(env))
        env.run(until=10.0)
        assert got == [1.0]

    def test_any_of_empty_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            AnyOf(env, [])
