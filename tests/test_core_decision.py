"""Decision engine and latency tiers (Section 5 semantics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import decision, model
from repro.core.decision import Strategy, Tier
from repro.core.parameters import ModelParameters
from repro.errors import DecisionError, ValidationError


class TestTiers:
    def test_deadlines_match_paper(self):
        assert decision.TIER_DEADLINES_S[Tier.TIER1] == 1.0
        assert decision.TIER_DEADLINES_S[Tier.TIER2] == 10.0
        assert decision.TIER_DEADLINES_S[Tier.TIER3] == 60.0

    def test_feasible_tiers_nested(self):
        ev = decision.StrategyEvaluation(Strategy.LOCAL, 0.5, 0.5)
        assert decision.feasible_tiers(ev) == [Tier.TIER1, Tier.TIER2, Tier.TIER3]

    def test_highest_feasible(self):
        ev = decision.StrategyEvaluation(Strategy.LOCAL, 5.0, 5.0)
        assert decision.highest_feasible_tier(ev) is Tier.TIER2

    def test_none_when_all_missed(self):
        ev = decision.StrategyEvaluation(Strategy.LOCAL, 100.0, 100.0)
        assert decision.highest_feasible_tier(ev) is None

    def test_require_any_tier_raises(self):
        ev = decision.StrategyEvaluation(Strategy.LOCAL, 100.0, 100.0)
        with pytest.raises(DecisionError):
            decision.require_any_tier(ev)

    def test_worst_case_vs_expected_criterion(self):
        ev = decision.StrategyEvaluation(Strategy.REMOTE_STREAMING, 0.5, 5.0)
        assert ev.meets(Tier.TIER1, worst_case=False)
        assert not ev.meets(Tier.TIER1, worst_case=True)


class TestEvaluationValidation:
    def test_worst_cannot_beat_expected(self):
        with pytest.raises(ValidationError):
            decision.StrategyEvaluation(Strategy.LOCAL, 2.0, 1.0)


class TestDecide:
    def test_remote_streaming_wins(self, params):
        d = decision.decide(params, streaming_alpha=0.9)
        assert d.chosen is Strategy.REMOTE_STREAMING

    def test_local_wins(self, local_wins_params):
        d = decision.decide(local_wins_params)
        assert d.chosen is Strategy.LOCAL
        assert d.reduction_vs_local_pct == pytest.approx(0.0)

    def test_chosen_minimises_time(self, params):
        d = decision.decide(params, streaming_alpha=0.9, sss=3.0)
        times = {s: d.time_of(s) for s in Strategy}
        assert d.chosen_time_s == pytest.approx(min(times.values()))

    def test_streaming_beats_file_with_same_alpha(self, params):
        # theta > 1 means file staging strictly adds time.
        d = decision.decide(params)
        evs = d.evaluations
        assert (
            evs[Strategy.REMOTE_STREAMING].expected_s
            < evs[Strategy.REMOTE_FILE].expected_s
        )

    def test_sss_degrades_remote_options_only(self, params):
        base = decision.decide(params)
        congested = decision.decide(params, sss=20.0)
        assert (
            congested.evaluations[Strategy.LOCAL].worst_case_s
            == base.evaluations[Strategy.LOCAL].worst_case_s
        )
        assert (
            congested.evaluations[Strategy.REMOTE_STREAMING].worst_case_s
            > base.evaluations[Strategy.REMOTE_STREAMING].worst_case_s
        )

    def test_severe_congestion_flips_to_local(self):
        # Remote is marginally better in expectation; a severe SSS flips it.
        p = ModelParameters(
            s_unit_gb=2.0,
            complexity_flop_per_gb=1e12,
            r_local_tflops=1.0,
            r_remote_tflops=10.0,
            bandwidth_gbps=25.0,
            alpha=0.9,
            theta=1.0,
        )
        assert decision.decide(p).chosen is not Strategy.LOCAL
        assert decision.decide(p, sss=30.0).chosen is Strategy.LOCAL

    def test_expected_criterion_ignores_sss(self, params):
        d = decision.decide(params, sss=50.0, use_worst_case=False)
        dd = decision.decide(params, use_worst_case=False)
        assert d.chosen is dd.chosen

    def test_invalid_sss(self, params):
        with pytest.raises(ValidationError):
            decision.decide(params, sss=0.5)

    def test_reduction_vs_local_positive_when_remote_chosen(self, params):
        d = decision.decide(params, streaming_alpha=0.9)
        assert d.reduction_vs_local_pct > 0


@given(
    s=st.floats(min_value=0.01, max_value=100.0),
    c=st.floats(min_value=1e9, max_value=1e14),
    rl=st.floats(min_value=0.1, max_value=100.0),
    ratio=st.floats(min_value=1.1, max_value=1000.0),
    bw=st.floats(min_value=0.1, max_value=1000.0),
    alpha=st.floats(min_value=0.05, max_value=1.0),
    theta=st.floats(min_value=1.0, max_value=50.0),
)
@settings(max_examples=100)
def test_decision_coherence_property(s, c, rl, ratio, bw, alpha, theta):
    """The chosen strategy's time equals the model-computed minimum."""
    p = ModelParameters(
        s_unit_gb=s,
        complexity_flop_per_gb=c,
        r_local_tflops=rl,
        r_remote_tflops=rl * ratio,
        bandwidth_gbps=bw,
        alpha=alpha,
        theta=theta,
    )
    d = decision.decide(p)
    t_loc = model.t_local(s, c, rl)
    t_stream = model.t_pct(s, c, rl, bw, alpha=alpha, r=ratio, theta=1.0)
    t_file = model.t_pct(s, c, rl, bw, alpha=alpha, r=ratio, theta=theta)
    best = min(t_loc, t_stream, t_file)
    assert d.chosen_time_s == pytest.approx(best, rel=1e-9)


class TestDecideWithCurve:
    """The scalar decide() joined to a measured SSS curve."""

    def _params(self):
        return ModelParameters(
            s_unit_gb=0.5,
            complexity_flop_per_gb=5e13,
            r_local_tflops=10.0,
            r_remote_tflops=1000.0,
            bandwidth_gbps=100.0,
            alpha=0.9,
            theta=2.0,
        )

    def _curve(self):
        from repro.core.sss import SSSMeasurement
        from repro.measurement.congestion import SssCurve

        points = [(0.2, 0.2), (0.8, 1.2), (1.2, 8.0)]
        return SssCurve(
            size_gb=0.5,
            bandwidth_gbps=25.0,
            measurements=[SSSMeasurement(0.5, 25.0, t, u) for u, t in points],
        )

    def test_curve_join_equals_explicit_sss(self):
        import numpy as np

        from repro.core import kernel

        curve = self._curve()
        table = kernel.sss_table_from_curve(curve)
        for u in (0.2, 0.5, 1.0, 1.2):
            joined = decision.decide(
                self._params(), sss_curve=curve, utilization=u
            )
            explicit = decision.decide(
                self._params(), sss=float(kernel.interp_sss(u, table))
            )
            assert joined.chosen is explicit.chosen
            for s in Strategy:
                assert joined.time_of(s) == explicit.time_of(s)

    def test_severe_congestion_flips_to_local(self):
        curve = self._curve()
        params = self._params().replace(bandwidth_gbps=25.0)
        relaxed = decision.decide(params, sss_curve=curve, utilization=0.2)
        congested = decision.decide(params, sss_curve=curve, utilization=1.2)
        assert relaxed.chosen is Strategy.REMOTE_STREAMING
        assert congested.chosen is Strategy.LOCAL

    def test_curve_and_scalar_sss_mutually_exclusive(self):
        with pytest.raises(ValidationError, match="not both"):
            decision.decide(
                self._params(), sss=2.0, sss_curve=self._curve(), utilization=0.5
            )

    def test_curve_requires_utilization(self):
        with pytest.raises(ValidationError, match="utilization"):
            decision.decide(self._params(), sss_curve=self._curve())

    def test_utilization_without_curve_rejected(self):
        with pytest.raises(ValidationError, match="sss_curve"):
            decision.decide(self._params(), utilization=0.5)
