"""Transfer logs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError, ValidationError
from repro.measurement.collector import TransferLog, TransferRecord


def rec(cid=0, start=0.0, end=1.0, nbytes=5e8, label=""):
    return TransferRecord(
        client_id=cid, start_s=start, end_s=end, nbytes=nbytes, label=label
    )


class TestRecord:
    def test_duration_and_throughput(self):
        r = rec(start=1.0, end=3.0, nbytes=2e9)
        assert r.duration_s == pytest.approx(2.0)
        assert r.throughput_bytes_per_s == pytest.approx(1e9)

    def test_validation(self):
        with pytest.raises(ValidationError):
            rec(start=-1.0)
        with pytest.raises(ValidationError):
            rec(start=2.0, end=1.0)
        with pytest.raises(ValidationError):
            rec(nbytes=0.0)

    def test_instant_transfer_has_infinite_throughput(self):
        assert rec(start=1.0, end=1.0).throughput_bytes_per_s == float("inf")


class TestLog:
    def test_add_extend_len(self):
        log = TransferLog()
        log.add(rec())
        log.extend([rec(cid=1), rec(cid=2)])
        assert len(log) == 3

    def test_durations_array(self):
        log = TransferLog([rec(end=0.5), rec(end=2.0)])
        np.testing.assert_allclose(log.durations_s(), [0.5, 2.0])

    def test_worst_case(self):
        log = TransferLog([rec(end=0.5), rec(end=2.0)])
        assert log.worst_case_s() == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            TransferLog().durations_s()

    def test_total_bytes(self):
        log = TransferLog([rec(nbytes=1e9), rec(nbytes=2e9)])
        assert log.total_bytes() == pytest.approx(3e9)

    def test_merge_is_non_destructive(self):
        a = TransferLog([rec(cid=0)])
        b = TransferLog([rec(cid=1)])
        merged = a.merge(b)
        assert len(merged) == 2 and len(a) == 1 and len(b) == 1

    def test_filter_label(self):
        log = TransferLog([rec(label="x"), rec(label="y"), rec(label="x")])
        assert len(log.filter_label("x")) == 2

    def test_window_selects_by_start(self):
        log = TransferLog([rec(start=0.0, end=1.0), rec(start=5.0, end=6.0)])
        assert len(log.window(0.0, 2.0)) == 1
        assert len(log.window(0.0, 10.0)) == 2

    def test_window_validation(self):
        with pytest.raises(ValidationError):
            TransferLog().window(2.0, 1.0)

    def test_summary_integrates_stats(self):
        log = TransferLog([rec(end=e) for e in (0.2, 0.2, 0.2, 5.0)])
        s = log.summary()
        assert s.maximum == pytest.approx(5.0)
        assert s.count == 4
