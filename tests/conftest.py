"""Shared fixtures: small, fast simulation configurations.

Simulation-backed tests use a scaled-down link (fewer steps per second)
and short experiment durations so the whole suite stays fast while
exercising the same code paths as the full benchmarks.
"""

from __future__ import annotations

import pytest

from repro.core.parameters import ModelParameters
from repro.simnet.link import Link, fabric_link
from repro.storage.dtn import DtnModel
from repro.storage.presets import eagle_lustre, voyager_gpfs
from repro.workloads.instrument import FrameSpec
from repro.workloads.scan import ScanSpec


@pytest.fixture
def params() -> ModelParameters:
    """A representative parameter set where remote processing wins."""
    return ModelParameters(
        s_unit_gb=2.0,
        complexity_flop_per_gb=17e12,
        r_local_tflops=10.0,
        r_remote_tflops=100.0,
        bandwidth_gbps=25.0,
        alpha=0.8,
        theta=3.0,
    )


@pytest.fixture
def local_wins_params() -> ModelParameters:
    """A parameter set where local processing wins (slow thin pipe)."""
    return ModelParameters(
        s_unit_gb=10.0,
        complexity_flop_per_gb=1e11,
        r_local_tflops=10.0,
        r_remote_tflops=20.0,
        bandwidth_gbps=1.0,
        alpha=0.5,
        theta=5.0,
    )


@pytest.fixture
def testbed_link() -> Link:
    """The paper's 25 Gbps / 16 ms FABRIC path."""
    return fabric_link()


@pytest.fixture
def small_scan() -> ScanSpec:
    """A 24-frame scan for fast pipeline tests."""
    return ScanSpec(
        frame=FrameSpec(width_px=2048, height_px=2048, bytes_per_px=2),
        n_frames=24,
        frame_interval_s=0.033,
    )


@pytest.fixture
def source_fs():
    """Voyager-GPFS preset."""
    return voyager_gpfs()


@pytest.fixture
def dest_fs():
    """Eagle-Lustre preset."""
    return eagle_lustre()


@pytest.fixture
def dtn() -> DtnModel:
    """A 25 Gbps DTN pair with 0.1 s per-file setup (fast for tests)."""
    return DtnModel(
        wan_bandwidth_gbps=25.0,
        alpha=0.5,
        per_file_setup_s=0.1,
        concurrency=1,
    )
