"""Table-3 workflows."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.workloads.lcls import (
    TABLE3_ROWS,
    Workflow,
    coherent_scattering,
    liquid_scattering,
    table3_workflows,
)


class TestTable3Values:
    def test_coherent_scattering(self):
        w = coherent_scattering()
        assert w.throughput_gbytes_per_s == 2.0
        assert w.offline_analysis_tflop == 34.0
        assert w.throughput_gbps == pytest.approx(16.0)

    def test_liquid_scattering(self):
        w = liquid_scattering()
        assert w.throughput_gbytes_per_s == 4.0
        assert w.offline_analysis_tflop == 20.0
        assert w.throughput_gbps == pytest.approx(32.0)

    def test_table_rows_in_paper_order(self):
        assert TABLE3_ROWS[0][1] == "2 GB/s"
        assert TABLE3_ROWS[1][2] == "20 TF"
        assert len(table3_workflows()) == 2


class TestLinkFeasibility:
    def test_coherent_fits_25gbps(self):
        assert coherent_scattering().fits_link(25.0)

    def test_liquid_exceeds_25gbps(self):
        # "Obviously 4 GB/s (32 Gbps) would be unfeasible because it is
        # higher than our link capacity of 25 Gbps."
        assert not liquid_scattering().fits_link(25.0)

    def test_alpha_tightens_the_gate(self):
        assert not coherent_scattering().fits_link(25.0, alpha=0.5)


class TestDerived:
    def test_data_unit_is_one_second(self):
        assert coherent_scattering().data_unit_gb == 2.0

    def test_complexity_per_gb(self):
        assert coherent_scattering().complexity_flop_per_gb == pytest.approx(17e12)
        assert liquid_scattering().complexity_flop_per_gb == pytest.approx(5e12)

    def test_required_remote_tflops(self):
        # Paper: 8.8 s left for analysis -> 34/8.8 ~ 3.9 TFLOPS needed.
        w = coherent_scattering()
        assert w.required_remote_tflops(10.0, 1.2) == pytest.approx(34.0 / 8.8)

    def test_transfer_exhausting_deadline_raises(self):
        with pytest.raises(ValidationError):
            coherent_scattering().required_remote_tflops(10.0, 10.0)

    def test_to_model_parameters(self):
        p = coherent_scattering().to_model_parameters(
            r_local_tflops=10.0,
            r_remote_tflops=100.0,
            bandwidth_gbps=25.0,
            alpha=0.8,
        )
        assert p.s_unit_gb == 2.0
        assert p.complexity_flop_per_gb * p.s_unit_gb == pytest.approx(34e12)


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValidationError):
            Workflow(name="", throughput_gbytes_per_s=1.0, offline_analysis_tflop=1.0)
        with pytest.raises(ValidationError):
            Workflow(name="x", throughput_gbytes_per_s=0.0, offline_analysis_tflop=1.0)
        with pytest.raises(ValidationError):
            Workflow(name="x", throughput_gbytes_per_s=1.0, offline_analysis_tflop=0.0)
