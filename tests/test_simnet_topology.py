"""Topology layer, routing and the testbed presets."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.simnet.link import Link
from repro.simnet.topology import (
    TESTBED_TABLE1,
    Host,
    Path,
    Route,
    Topology,
    cross_facility_testbed,
    fabric_testbed,
)


def _link(gbps=25.0):
    return Link(capacity_gbps=gbps, rtt_s=0.016)


class TestHost:
    def test_valid(self):
        h = Host(name="dtn1", vcpus=16, memory_gb=32.0, nic_gbps=25.0)
        assert h.nic_gbps == 25.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Host(name="")

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ValidationError):
            Host(name="x", vcpus=0)


class TestPath:
    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Path(src="a", dst="a", link=_link())


class TestTopology:
    def _two_hosts(self, nic=25.0):
        topo = Topology()
        topo.add_host(Host(name="a", nic_gbps=nic))
        topo.add_host(Host(name="b", nic_gbps=nic))
        return topo

    def test_connect_and_lookup(self):
        topo = self._two_hosts()
        topo.connect("a", "b", _link())
        assert topo.path_between("b", "a") is not None

    def test_duplicate_host_rejected(self):
        topo = self._two_hosts()
        with pytest.raises(ValidationError):
            topo.add_host(Host(name="a", nic_gbps=25.0))

    def test_unknown_host_rejected(self):
        topo = self._two_hosts()
        with pytest.raises(ValidationError):
            topo.connect("a", "zzz", _link())

    def test_undersized_nic_rejected(self):
        topo = self._two_hosts(nic=10.0)
        with pytest.raises(ValidationError):
            topo.connect("a", "b", _link(25.0))

    def test_missing_path_is_none(self):
        topo = self._two_hosts()
        assert topo.path_between("a", "b") is None

    def test_duplicate_pair_rejected_both_orientations(self):
        topo = self._two_hosts()
        topo.connect("a", "b", _link())
        with pytest.raises(ValidationError, match="already connected"):
            topo.connect("a", "b", _link())
        with pytest.raises(ValidationError, match="already connected"):
            topo.connect("b", "a", _link(10.0))

    def test_segment_lookup_either_orientation(self):
        topo = self._two_hosts()
        path = topo.connect("a", "b", _link())
        assert topo.segment("a-b") is path
        assert topo.segment("b-a") is path

    def test_unknown_segment_names_known_ones(self):
        topo = self._two_hosts()
        topo.connect("a", "b", _link())
        with pytest.raises(ValidationError, match="'a-b'"):
            topo.segment("a-zzz")


def _chain(*gbps):
    """hosts h0..hN joined in a line by links of the given capacities."""
    topo = Topology()
    for i in range(len(gbps) + 1):
        topo.add_host(Host(name=f"h{i}", nic_gbps=1000.0))
    for i, g in enumerate(gbps):
        topo.connect(f"h{i}", f"h{i + 1}", _link(g))
    return topo


class TestRouting:
    def test_single_hop_route(self):
        topo = _chain(25.0)
        route = topo.route("h0", "h1")
        assert len(route) == 1
        assert route.segments == ("h0-h1",)
        assert route.bottleneck.capacity_gbps == 25.0

    def test_multi_hop_route_order_and_properties(self):
        topo = _chain(100.0, 25.0, 40.0)
        route = topo.route("h0", "h3")
        assert route.segments == ("h0-h1", "h1-h2", "h2-h3")
        assert [l.capacity_gbps for l in route.links] == [100.0, 25.0, 40.0]
        assert route.bottleneck.capacity_gbps == 25.0
        assert route.rtt_s == pytest.approx(3 * 0.016)

    def test_route_is_direction_agnostic(self):
        topo = _chain(100.0, 25.0)
        fwd = topo.route("h0", "h2")
        rev = topo.route("h2", "h0")
        assert rev.segments == tuple(reversed(fwd.segments))
        assert rev.bottleneck == fwd.bottleneck

    def test_shortest_route_wins(self):
        # a-b-c chain plus a direct a-c shortcut: route takes 1 hop.
        topo = _chain(25.0, 25.0)
        topo.connect("h0", "h2", _link(10.0))
        route = topo.route("h0", "h2")
        assert route.segments == ("h0-h2",)

    def test_unknown_host_actionable(self):
        topo = _chain(25.0)
        with pytest.raises(ValidationError, match="unknown host 'zzz'"):
            topo.route("h0", "zzz")

    def test_same_endpoints_rejected(self):
        topo = _chain(25.0)
        with pytest.raises(ValidationError, match="must differ"):
            topo.route("h0", "h0")

    def test_unreachable_pair_names_reachable_set(self):
        topo = _chain(25.0)
        topo.add_host(Host(name="island", nic_gbps=1000.0))
        with pytest.raises(ValidationError, match="no route from 'h0' to 'island'"):
            topo.route("h0", "island")

    def test_bottleneck_tie_breaks_to_first_hop(self):
        topo = _chain(25.0, 25.0)
        route = topo.route("h0", "h2")
        assert route.bottleneck is route.hops[0].link

    def test_empty_route_rejected(self):
        with pytest.raises(ValidationError, match=">= 1 hop"):
            Route(src="a", dst="b", hops=())


class TestCrossFacilityPreset:
    def test_structure(self):
        topo = cross_facility_testbed()
        assert set(topo.hosts) == {"edge", "dtn", "wan", "hpc"}
        route = topo.route("edge", "hpc")
        assert route.segments == ("edge-dtn", "dtn-wan", "wan-hpc")
        assert route.bottleneck is topo.segment("dtn-wan").link
        assert route.bottleneck.capacity_gbps == 25.0
        assert route.bottleneck.rtt_s == 0.016

    def test_all_jumbo_frames(self):
        topo = cross_facility_testbed()
        assert all(p.link.mtu_bytes == 9000 for p in topo.paths)


class TestFabricPreset:
    def test_structure(self):
        topo = fabric_testbed()
        assert set(topo.hosts) == {"sender", "receiver"}
        path = topo.path_between("sender", "receiver")
        assert path is not None
        assert path.link.capacity_gbps == 25.0
        assert path.link.rtt_s == 0.016

    def test_table1_rows(self):
        components = [c for c, _ in TESTBED_TABLE1]
        assert "CPU" in components
        assert "MTU" in components
        specs = dict(TESTBED_TABLE1)
        assert "25 Gbps" in specs["Network Interface"]
        assert "9000" in specs["MTU"]
