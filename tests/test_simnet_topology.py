"""Topology layer and Table-1 preset."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.simnet.link import Link
from repro.simnet.topology import (
    TESTBED_TABLE1,
    Host,
    Path,
    Topology,
    fabric_testbed,
)


def _link(gbps=25.0):
    return Link(capacity_gbps=gbps, rtt_s=0.016)


class TestHost:
    def test_valid(self):
        h = Host(name="dtn1", vcpus=16, memory_gb=32.0, nic_gbps=25.0)
        assert h.nic_gbps == 25.0

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Host(name="")

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ValidationError):
            Host(name="x", vcpus=0)


class TestPath:
    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Path(src="a", dst="a", link=_link())


class TestTopology:
    def _two_hosts(self, nic=25.0):
        topo = Topology()
        topo.add_host(Host(name="a", nic_gbps=nic))
        topo.add_host(Host(name="b", nic_gbps=nic))
        return topo

    def test_connect_and_lookup(self):
        topo = self._two_hosts()
        topo.connect("a", "b", _link())
        assert topo.path_between("b", "a") is not None

    def test_duplicate_host_rejected(self):
        topo = self._two_hosts()
        with pytest.raises(ValidationError):
            topo.add_host(Host(name="a", nic_gbps=25.0))

    def test_unknown_host_rejected(self):
        topo = self._two_hosts()
        with pytest.raises(ValidationError):
            topo.connect("a", "zzz", _link())

    def test_undersized_nic_rejected(self):
        topo = self._two_hosts(nic=10.0)
        with pytest.raises(ValidationError):
            topo.connect("a", "b", _link(25.0))

    def test_missing_path_is_none(self):
        topo = self._two_hosts()
        assert topo.path_between("a", "b") is None


class TestFabricPreset:
    def test_structure(self):
        topo = fabric_testbed()
        assert set(topo.hosts) == {"sender", "receiver"}
        path = topo.path_between("sender", "receiver")
        assert path is not None
        assert path.link.capacity_gbps == 25.0
        assert path.link.rtt_s == 0.016

    def test_table1_rows(self):
        components = [c for c, _ in TESTBED_TABLE1]
        assert "CPU" in components
        assert "MTU" in components
        specs = dict(TESTBED_TABLE1)
        assert "25 Gbps" in specs["Network Interface"]
        assert "9000" in specs["MTU"]
