"""Text rendering."""

from __future__ import annotations

import pytest

from repro.analysis.report import (
    render_bars,
    render_cdf,
    render_series,
    render_table,
)
from repro.errors import ValidationError


class TestTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_column_alignment(self):
        out = render_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [["only-one"]])

    def test_non_string_cells_coerced(self):
        out = render_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out


class TestSeries:
    def test_multi_series(self):
        out = render_series(
            [0.16, 0.32],
            {"P=2": [0.3, 0.5], "P=4": [0.4, 0.6]},
            x_label="load",
            y_label="max T",
        )
        assert "P=2 max T" in out
        assert "0.16" in out

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            render_series([1.0], {"a": [1.0, 2.0]}, "x", "y")


class TestBars:
    def test_scaling(self):
        out = render_bars(["a", "b"], [1.0, 10.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 1
        assert lines[1].count("#") == 10

    def test_minimum_one_hash(self):
        out = render_bars(["tiny", "big"], [0.001, 100.0], width=10)
        assert "#" in out.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_bars([], [])

    def test_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            render_bars(["a"], [1.0, 2.0])

    def test_all_zero_rejected(self):
        with pytest.raises(ValidationError):
            render_bars(["a"], [0.0])


class TestCdf:
    def test_percentile_rows(self):
        out = render_cdf([1.0] * 90 + [10.0] * 10)
        assert "P50" in out and "P99" in out
        assert "10.000" in out

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_cdf([])
