"""Text rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import (
    render_bars,
    render_cdf,
    render_decision_map,
    render_series,
    render_table,
)
from repro.errors import ValidationError


class TestTable:
    def test_basic_layout(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        assert len(lines) == 5

    def test_column_alignment(self):
        out = render_table(["x"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [["only-one"]])

    def test_non_string_cells_coerced(self):
        out = render_table(["n"], [[42], [3.5]])
        assert "42" in out and "3.5" in out


class TestSeries:
    def test_multi_series(self):
        out = render_series(
            [0.16, 0.32],
            {"P=2": [0.3, 0.5], "P=4": [0.4, 0.6]},
            x_label="load",
            y_label="max T",
        )
        assert "P=2 max T" in out
        assert "0.16" in out

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            render_series([1.0], {"a": [1.0, 2.0]}, "x", "y")


class TestBars:
    def test_scaling(self):
        out = render_bars(["a", "b"], [1.0, 10.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 1
        assert lines[1].count("#") == 10

    def test_minimum_one_hash(self):
        out = render_bars(["tiny", "big"], [0.001, 100.0], width=10)
        assert "#" in out.splitlines()[0]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_bars([], [])

    def test_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            render_bars(["a"], [1.0, 2.0])

    def test_all_zero_rejected(self):
        with pytest.raises(ValidationError):
            render_bars(["a"], [0.0])


class TestCdf:
    def test_percentile_rows(self):
        out = render_cdf([1.0] * 90 + [10.0] * 10)
        assert "P50" in out and "P99" in out
        assert "10.000" in out

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_cdf([])


class TestDecisionMapRendering:
    def _dmap(self):
        from repro.analysis.crossover import DecisionMap

        return DecisionMap(
            x_name="bandwidth_gbps",
            y_name="utilization",
            x_values=np.array([1.0, 10.0, 100.0]),
            y_values=np.array([0.2, 0.8]),
            winners=np.array([[0, 1, 1], [0, 0, 2]]),
        )

    def test_layout_and_legend(self):
        out = render_decision_map(self._dmap())
        lines = out.splitlines()
        assert lines[0].startswith("Decision map")
        # y increases upward: the 0.8 row renders above the 0.2 row.
        assert lines.index([l for l in lines if "0.8" in l][0]) < lines.index(
            [l for l in lines if l.strip().startswith("0.2")][0]
        )
        assert "LLF" in out and "LSS" in out
        assert "legend: L=local  S=remote-streaming  F=remote-file" in out

    def test_shares_sum_to_hundred(self):
        out = render_decision_map(self._dmap())
        shares = [
            float(part.rsplit(" ", 1)[1].rstrip("%"))
            for part in out.splitlines()[-1].removeprefix("shares: ").split("  ")
        ]
        assert sum(shares) == pytest.approx(100.0)

    def test_x_axis_annotated(self):
        out = render_decision_map(self._dmap())
        assert "bandwidth_gbps: 1 .. 100 (3 columns)" in out

    def test_shape_mismatch_rejected(self):
        dmap = self._dmap()
        dmap.winners = dmap.winners[:, :2]
        with pytest.raises(ValidationError, match="shape"):
            render_decision_map(dmap)

    def test_out_of_range_codes_rejected(self):
        dmap = self._dmap()
        dmap.winners = dmap.winners + 5
        with pytest.raises(ValidationError, match="codes"):
            render_decision_map(dmap)

    def test_custom_title(self):
        out = render_decision_map(self._dmap(), title="my map")
        assert out.splitlines()[0] == "my map"
