"""Tier feasibility assessment (Section 5 mechanics)."""

from __future__ import annotations

import pytest

from repro.analysis.tiers import (
    assess_all_tiers,
    assess_workflow,
    reduced_rate_workflow,
)
from repro.core.decision import Tier
from repro.core.sss import SSSMeasurement
from repro.errors import CapacityError
from repro.measurement.congestion import SssCurve
from repro.workloads.lcls import coherent_scattering, liquid_scattering


def paper_like_curve():
    """A curve matching the paper's readings: 1.2 s @ 64 %, 6 s @ 96 %."""
    points = [(0.16, 0.3), (0.64, 1.2), (0.96, 6.0), (1.28, 12.0)]
    return SssCurve(
        size_gb=0.5,
        bandwidth_gbps=25.0,
        measurements=[SSSMeasurement(0.5, 25.0, t, u) for u, t in points],
    )


class TestCoherentScattering:
    def test_tier2_feasible_with_paper_numbers(self):
        a = assess_workflow(coherent_scattering(), paper_like_curve(), Tier.TIER2)
        assert a.fits_link
        assert a.feasible
        assert a.worst_case_transfer_s == pytest.approx(1.2)
        # "leaving 8.8 seconds for the analysis"
        assert a.analysis_budget_s == pytest.approx(8.8)

    def test_required_remote_compute(self):
        a = assess_workflow(coherent_scattering(), paper_like_curve(), Tier.TIER2)
        assert a.required_remote_tflops == pytest.approx(34.0 / 8.8)

    def test_tier1_infeasible(self):
        # 1.2 s transfer alone exceeds the 1 s Tier-1 deadline.
        a = assess_workflow(coherent_scattering(), paper_like_curve(), Tier.TIER1)
        assert not a.feasible
        assert a.analysis_budget_s is None

    def test_compute_availability_gate(self):
        a = assess_workflow(
            coherent_scattering(), paper_like_curve(), Tier.TIER2,
            available_remote_tflops=1.0,
        )
        assert not a.feasible
        assert "TFLOPS" in a.note

    def test_transfer_fraction(self):
        a = assess_workflow(coherent_scattering(), paper_like_curve(), Tier.TIER2)
        assert a.transfer_fraction == pytest.approx(0.12)


class TestLiquidScattering:
    def test_exceeds_link(self):
        a = assess_workflow(liquid_scattering(), paper_like_curve(), Tier.TIER2)
        assert not a.fits_link
        assert not a.feasible
        assert "exceeds" in a.note

    def test_reduced_rate_fits(self):
        reduced = reduced_rate_workflow(liquid_scattering(), 3.0)
        a = assess_workflow(
            reduced, paper_like_curve(), Tier.TIER2, utilization=0.96
        )
        assert a.fits_link
        # "worst-case ... 6 seconds ... leaving only 4 seconds"
        assert a.worst_case_transfer_s == pytest.approx(6.0)
        assert a.analysis_budget_s == pytest.approx(4.0)

    def test_reduction_must_reduce(self):
        with pytest.raises(CapacityError):
            reduced_rate_workflow(liquid_scattering(), 4.0)
        with pytest.raises(CapacityError):
            reduced_rate_workflow(liquid_scattering(), 5.0)

    def test_reduction_keeps_compute_demand(self):
        reduced = reduced_rate_workflow(liquid_scattering(), 3.0)
        assert reduced.offline_analysis_tflop == 20.0
        assert reduced.throughput_gbytes_per_s == 3.0


class TestAllTiers:
    def test_covers_every_tier(self):
        results = assess_all_tiers(coherent_scattering(), paper_like_curve())
        assert set(results) == set(Tier)

    def test_feasibility_is_monotone_in_deadline(self):
        results = assess_all_tiers(coherent_scattering(), paper_like_curve())
        # If a tighter tier is feasible, every looser one must be too.
        if results[Tier.TIER1].feasible:
            assert results[Tier.TIER2].feasible
        if results[Tier.TIER2].feasible:
            assert results[Tier.TIER3].feasible
