"""The columnar evaluation kernel: one validated block path.

Three properties are pinned:

1. *single source of truth* — every kernel column agrees with the
   scalar layer it replaced (``core.model``, ``core.gain``,
   ``core.decision``) on random inputs, bit for bit where the scalar
   layer is exact,
2. *vectorized decision* — the integer-coded ``decision``/``tier``
   columns are bit-identical to a per-point loop over the scalar
   :func:`repro.core.decision.decide` engine (hypothesis random grids),
3. *validation discipline* — a block validates once at construction
   with the same axis-naming errors the sweep engine always raised.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import importlib

from repro.core import kernel, model

# ``repro.core`` re-exports the gain *function* under the submodule's
# name, so fetch the module itself for the comparison tests.
gain_mod = importlib.import_module("repro.core.gain")
from repro.core.decision import (
    STRATEGIES_BY_CODE,
    decide,
    highest_feasible_tier,
    strategy_from_code,
    tier_from_code,
)
from repro.core.parameters import ModelParameters, aps_to_alcf_defaults
from repro.errors import ValidationError

BASE = aps_to_alcf_defaults()


def _block_from_grid(rng: np.random.Generator, n: int) -> kernel.ParamBlock:
    return kernel.ParamBlock.from_columns(
        {
            "bandwidth_gbps": rng.uniform(0.5, 400.0, n),
            "s_unit_gb": rng.uniform(0.1, 50.0, n),
            "complexity_flop_per_gb": rng.uniform(1e9, 1e14, n),
        },
        base=BASE,
        n=n,
    )


class TestParamBlock:
    def test_from_params_is_one_point(self):
        block = kernel.ParamBlock.from_params(BASE)
        assert block.n == 1
        assert float(block.r) == pytest.approx(BASE.r)

    def test_from_columns_merges_base(self):
        block = kernel.ParamBlock.from_columns(
            {"bandwidth_gbps": np.array([1.0, 10.0])}, base=BASE, n=2
        )
        assert block.n == 2
        assert float(block.alpha) == BASE.alpha
        np.testing.assert_array_equal(block.bandwidth_gbps, [1.0, 10.0])

    def test_from_columns_infers_n(self):
        block = kernel.ParamBlock.from_columns(
            {"bandwidth_gbps": np.array([1.0, 10.0, 100.0])}, base=BASE
        )
        assert block.n == 3

    def test_non_model_columns_ignored(self):
        block = kernel.ParamBlock.from_columns(
            {"facility": np.array(["a", "b"], dtype=object),
             "bandwidth_gbps": np.array([1.0, 2.0])},
            base=BASE, n=2,
        )
        assert block.n == 2

    def test_r_remote_divided_by_swept_local_rate(self):
        block = kernel.ParamBlock.from_columns(
            {"r_local_tflops": np.array([5.0, 50.0])}, base=BASE, n=2
        )
        # The base's remote machine stays absolute.
        np.testing.assert_allclose(
            block.r * block.r_local_tflops, BASE.r_remote_tflops
        )

    def test_validation_names_offending_axis(self):
        with pytest.raises(ValidationError, match="bandwidth_gbps"):
            kernel.ParamBlock.from_columns(
                {"bandwidth_gbps": np.array([25.0, 0.0])}, base=BASE, n=2
            )

    def test_redundant_remote_speed_rejected(self):
        with pytest.raises(ValidationError, match="redundant"):
            kernel.ParamBlock.from_columns(
                {"r": np.array([2.0]), "r_remote_tflops": np.array([50.0])},
                base=BASE, n=1,
            )

    def test_missing_parameter_without_base(self):
        with pytest.raises(ValidationError, match="neither swept nor supplied"):
            kernel.ParamBlock.from_columns(
                {"bandwidth_gbps": np.array([25.0])}, n=1
            )

    def test_mismatched_column_lengths_rejected_at_construction(self):
        """Shape errors surface as ValidationError naming the columns at
        block construction — never as a raw numpy broadcast error deep
        inside a derived-column kernel."""
        with pytest.raises(ValidationError, match="share one length"):
            kernel.ParamBlock.from_columns(
                {
                    "bandwidth_gbps": np.array([1.0, 2.0, 3.0]),
                    "s_unit_gb": np.array([0.5, 1.0]),
                },
                base=BASE,
            )

    def test_column_length_must_match_explicit_n(self):
        with pytest.raises(ValidationError, match="expected n=4"):
            kernel.ParamBlock.from_columns(
                {"bandwidth_gbps": np.array([1.0, 2.0, 3.0])}, base=BASE, n=4
            )

    def test_length_one_columns_broadcast_like_scalars(self):
        block = kernel.ParamBlock.from_columns(
            {
                "bandwidth_gbps": np.array([1.0, 2.0, 3.0]),
                "s_unit_gb": np.array([0.5]),
            },
            base=BASE,
        )
        assert block.n == 3
        assert kernel.compute_columns(block, ("t_pct",))["t_pct"].shape == (3,)


class TestDerivedColumns:
    def test_registry_is_public_and_underscore_free(self):
        assert "decision" in kernel.KERNEL_COLUMNS
        assert "tier" in kernel.KERNEL_COLUMNS
        assert not any(name.startswith("_") for name in kernel.KERNEL_COLUMNS)

    def test_unknown_column_rejected(self):
        block = kernel.ParamBlock.from_params(BASE)
        with pytest.raises(ValidationError, match="unknown kernel columns"):
            kernel.compute_columns(block, ("t_local", "nope"))
        with pytest.raises(ValidationError, match="unknown kernel columns"):
            kernel.compute_columns(block, ("_strategy_stack",))

    def test_columns_match_scalar_model(self):
        rng = np.random.default_rng(0)
        n = 257
        block = _block_from_grid(rng, n)
        cols = kernel.compute_columns(block, kernel.KERNEL_COLUMNS)
        for i in range(n):
            params = BASE.replace(
                bandwidth_gbps=float(block.bandwidth_gbps[i]),
                s_unit_gb=float(block.s_unit_gb[i]),
                complexity_flop_per_gb=float(block.complexity_flop_per_gb[i]),
            )
            times = model.evaluate(params)
            assert cols["t_local"][i] == times.t_local
            assert cols["t_transfer"][i] == times.t_transfer
            assert cols["t_io"][i] == times.t_io
            assert cols["t_remote"][i] == times.t_remote
            assert cols["t_pct"][i] == times.t_pct
            assert cols["speedup"][i] == times.speedup
            assert bool(cols["remote_is_faster"][i]) == times.remote_is_faster

    def test_gain_and_kappa_match_gain_module(self):
        rng = np.random.default_rng(1)
        block = _block_from_grid(rng, 64)
        cols = kernel.compute_columns(
            block, ("gain", "kappa", "break_even_theta", "break_even_kappa",
                    "break_even_r", "asymptotic_gain")
        )
        k = gain_mod.kappa(
            block.complexity_flop_per_gb, BASE.r_local_tflops, block.bandwidth_gbps
        )
        np.testing.assert_array_equal(cols["kappa"], k)
        np.testing.assert_array_equal(
            cols["gain"], gain_mod.gain(BASE.alpha, BASE.r, BASE.theta, k)
        )
        np.testing.assert_array_equal(
            cols["break_even_theta"],
            gain_mod.break_even_theta(BASE.alpha, BASE.r, k),
        )
        np.testing.assert_array_equal(
            cols["break_even_kappa"],
            gain_mod.break_even_kappa(BASE.alpha, BASE.r, BASE.theta),
        )
        np.testing.assert_array_equal(
            cols["break_even_r"],
            gain_mod.break_even_r(BASE.alpha, BASE.theta, k),
        )
        np.testing.assert_array_equal(
            cols["asymptotic_gain"],
            gain_mod.asymptotic_gain(BASE.alpha, BASE.theta, k),
        )

    def test_gain_equals_speedup_by_construction(self):
        rng = np.random.default_rng(2)
        block = _block_from_grid(rng, 128)
        cols = kernel.compute_columns(block, ("gain", "speedup"))
        np.testing.assert_allclose(cols["gain"], cols["speedup"], rtol=1e-12)

    def test_break_even_alpha_nan_when_remote_not_faster(self):
        block = kernel.ParamBlock.from_columns(
            {"r": np.array([0.5, 1.0, 4.0])}, base=BASE, n=3
        )
        out = kernel.compute_columns(block, ("break_even_alpha",))[
            "break_even_alpha"
        ]
        assert np.isnan(out[0]) and np.isnan(out[1]) and np.isfinite(out[2])

    def test_zero_complexity_pure_data_movement(self, recwarn):
        """C == 0 must flow through every column without numpy warnings:
        kappa is inf, gain/speedup 0, local always wins."""
        block = kernel.ParamBlock.from_columns(
            {"complexity_flop_per_gb": np.array([0.0])}, base=BASE, n=1
        )
        cols = kernel.compute_columns(
            block, ("t_local", "kappa", "gain", "speedup", "decision")
        )
        assert cols["t_local"][0] == 0.0
        assert np.isinf(cols["kappa"][0])
        assert cols["gain"][0] == 0.0
        assert cols["speedup"][0] == 0.0
        assert strategy_from_code(cols["decision"][0]).value == "local"
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]


class TestDecisionColumns:
    def test_codes_align_with_strategy_enum(self):
        assert [s.value for s in STRATEGIES_BY_CODE] == list(kernel.STRATEGY_LABELS)
        with pytest.raises(ValidationError, match="decision code"):
            strategy_from_code(3)
        # Negative codes must not wrap around via Python indexing.
        with pytest.raises(ValidationError, match="decision code"):
            strategy_from_code(-1)

    def test_tier_codes_roundtrip(self):
        assert tier_from_code(0) is None
        assert tier_from_code(2).value == 2
        with pytest.raises(ValidationError, match="tier code"):
            tier_from_code(7)

    def test_decide_block_matches_scalar_decide(self):
        rng = np.random.default_rng(3)
        n = 257
        block = _block_from_grid(rng, n)
        cols = kernel.compute_columns(block, ("decision", "tier"))
        for i in range(n):
            params = BASE.replace(
                bandwidth_gbps=float(block.bandwidth_gbps[i]),
                s_unit_gb=float(block.s_unit_gb[i]),
                complexity_flop_per_gb=float(block.complexity_flop_per_gb[i]),
            )
            d = decide(params)
            assert strategy_from_code(cols["decision"][i]) is d.chosen, i
            expected_tier = highest_feasible_tier(d.evaluations[d.chosen])
            assert tier_from_code(cols["tier"][i]) == expected_tier, i

    def test_decide_block_streaming_alpha(self):
        """An explicit streaming alpha reaches only the streaming
        strategy, as in the scalar engine."""
        rng = np.random.default_rng(4)
        n = 65
        block = _block_from_grid(rng, n)
        codes = kernel.decide_block(block, streaming_alpha=0.99)
        for i in range(n):
            params = BASE.replace(
                bandwidth_gbps=float(block.bandwidth_gbps[i]),
                s_unit_gb=float(block.s_unit_gb[i]),
                complexity_flop_per_gb=float(block.complexity_flop_per_gb[i]),
            )
            assert strategy_from_code(codes[i]) is decide(
                params, streaming_alpha=0.99
            ).chosen

    def test_decide_block_with_sss_matches_scalar(self):
        rng = np.random.default_rng(5)
        n = 65
        block = _block_from_grid(rng, n)
        for sss in (1.0, 4.0, 25.0):
            codes = kernel.decide_block(block, sss=sss)
            for i in range(n):
                params = BASE.replace(
                    bandwidth_gbps=float(block.bandwidth_gbps[i]),
                    s_unit_gb=float(block.s_unit_gb[i]),
                    complexity_flop_per_gb=float(block.complexity_flop_per_gb[i]),
                )
                assert strategy_from_code(codes[i]) is decide(params, sss=sss).chosen

    def test_invalid_sss_rejected(self):
        block = kernel.ParamBlock.from_params(BASE)
        with pytest.raises(ValidationError, match="SSS"):
            kernel.decide_block(block, sss=0.5)

    def test_classify_tier_strict_deadlines(self):
        np.testing.assert_array_equal(
            kernel.classify_tier([0.5, 1.0, 9.99, 10.0, 59.9, 60.0, 1e6]),
            [1, 2, 2, 3, 3, 0, 0],
        )


@settings(max_examples=40, deadline=None)
@given(
    bw=st.lists(
        st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=40
    ),
    s_unit=st.floats(min_value=0.01, max_value=100.0),
    complexity=st.floats(min_value=1e6, max_value=1e15),
    r_local=st.floats(min_value=0.1, max_value=100.0),
    r_remote=st.floats(min_value=0.1, max_value=10000.0),
    alpha=st.floats(min_value=0.01, max_value=1.0),
    theta=st.floats(min_value=1.0, max_value=20.0),
)
def test_property_vectorized_decision_bit_identical_to_scalar_loop(
    bw, s_unit, complexity, r_local, r_remote, alpha, theta
):
    """On arbitrary random grids the vectorized decision/tier columns
    equal a per-point loop over the scalar decision engine, bit for bit."""
    params = ModelParameters(
        s_unit_gb=s_unit,
        complexity_flop_per_gb=complexity,
        r_local_tflops=r_local,
        r_remote_tflops=r_remote,
        bandwidth_gbps=25.0,
        alpha=alpha,
        theta=theta,
    )
    block = kernel.ParamBlock.from_columns(
        {"bandwidth_gbps": np.asarray(bw, dtype=float)}, base=params, n=len(bw)
    )
    cols = kernel.compute_columns(block, ("decision", "tier", "t_pct", "speedup"))
    for i, b in enumerate(bw):
        d = decide(params.replace(bandwidth_gbps=b))
        assert strategy_from_code(cols["decision"][i]) is d.chosen
        assert tier_from_code(cols["tier"][i]) == highest_feasible_tier(
            d.evaluations[d.chosen]
        )
        times = model.evaluate(params.replace(bandwidth_gbps=b))
        assert cols["t_pct"][i] == times.t_pct
        assert cols["speedup"][i] == times.speedup


# ----------------------------------------------------------------------
# SSS-aware decisions: worst-case envelope shared with the scalar engine
# ----------------------------------------------------------------------
class _FakeCurve:
    """Minimal duck-typed curve (sorted utilisation -> SSS)."""

    def __init__(self, utils, scores):
        self.utilizations = np.asarray(utils, dtype=float)
        self.sss_values = np.asarray(scores, dtype=float)


CURVE = _FakeCurve([0.2, 0.5, 0.8, 1.0, 1.3], [1.0, 2.0, 7.5, 30.0, 40.0])


def _sss_block(rng: np.random.Generator, n: int, context=None) -> kernel.ParamBlock:
    return kernel.ParamBlock.from_columns(
        {
            "bandwidth_gbps": rng.uniform(0.5, 400.0, n),
            "s_unit_gb": rng.uniform(0.1, 50.0, n),
            "utilization": rng.uniform(0.2, 1.3, n),
        },
        base=BASE,
        n=n,
        context=context,
    )


@settings(max_examples=60, deadline=None)
@given(
    bw=st.lists(
        st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=30
    ),
    sss=st.one_of(
        st.floats(min_value=1.0, max_value=100.0),
        st.lists(
            st.floats(min_value=1.0, max_value=100.0),
            min_size=1,
            max_size=1,
        ),
    ),
    s_unit=st.floats(min_value=0.01, max_value=100.0),
    complexity=st.floats(min_value=1e6, max_value=1e15),
    r_remote=st.floats(min_value=0.1, max_value=10000.0),
    alpha=st.floats(min_value=0.01, max_value=1.0),
    theta=st.floats(min_value=1.0, max_value=20.0),
)
def test_property_sss_decision_bit_identical_to_scalar_loop(
    bw, sss, s_unit, complexity, r_remote, alpha, theta
):
    """``decide_block(sss=...)`` equals a per-point loop over the scalar
    ``decide(..., sss=...)`` — same worst-case inflation, same
    clamp-to-expectation envelope — for scalar and broadcast-shaped sss
    inputs alike."""
    params = ModelParameters(
        s_unit_gb=s_unit,
        complexity_flop_per_gb=complexity,
        r_local_tflops=10.0,
        r_remote_tflops=r_remote,
        bandwidth_gbps=25.0,
        alpha=alpha,
        theta=theta,
    )
    block = kernel.ParamBlock.from_columns(
        {"bandwidth_gbps": np.asarray(bw, dtype=float)}, base=params, n=len(bw)
    )
    sss_arg = sss if isinstance(sss, float) else np.asarray(sss, dtype=float)
    codes = kernel.decide_block(block, sss=sss_arg)
    scalar_sss = sss if isinstance(sss, float) else float(sss_arg[0])
    for i, b in enumerate(bw):
        d = decide(params.replace(bandwidth_gbps=b), sss=scalar_sss)
        assert strategy_from_code(codes[i]) is d.chosen


@settings(max_examples=30, deadline=None)
@given(
    sss=st.floats(min_value=1.0, max_value=50.0),
    n=st.integers(min_value=1, max_value=17),
)
def test_property_sss_tiebreak_prefers_lowest_code(sss, n):
    """With zero compute (every strategy pays the same remote time of 0
    and theta=1 makes streaming == file), ties must resolve to the
    lowest code — the scalar engine's stable ``min`` — even under SSS
    inflation."""
    block = kernel.ParamBlock.from_columns(
        {
            "s_unit_gb": np.full(n, 1.0),
            "complexity_flop_per_gb": np.zeros(n),
            "bandwidth_gbps": np.full(n, 25.0),
            "theta": np.ones(n),
        },
        base=BASE,
        n=n,
    )
    codes = kernel.decide_block(block, sss=sss)
    # t_local = 0 for C=0, so LOCAL (code 0) always wins the tie with
    # itself and beats any positive remote time.
    np.testing.assert_array_equal(codes, np.zeros(n, dtype=codes.dtype))
    # Streaming vs file tie at theta=1: force local out of the running
    # with a huge complexity and identical remote strategies.
    tie_block = kernel.ParamBlock.from_columns(
        {
            "s_unit_gb": np.full(n, 1.0),
            "complexity_flop_per_gb": np.full(n, 1e15),
            "bandwidth_gbps": np.full(n, 25.0),
            "theta": np.ones(n),
            "r": np.full(n, 50.0),
        },
        base=BASE,
        n=n,
    )
    tie_codes = kernel.decide_block(tie_block, sss=sss)
    d = decide(
        BASE.replace(
            s_unit_gb=1.0,
            complexity_flop_per_gb=1e15,
            bandwidth_gbps=25.0,
            theta=1.0,
            r_remote_tflops=50.0 * BASE.r_local_tflops,
        ),
        sss=sss,
    )
    assert all(strategy_from_code(c) is d.chosen for c in tie_codes)
    # The streaming/file tie resolves to the lower code (streaming).
    assert int(tie_codes[0]) <= 2


class TestSssContextJoin:
    def test_sss_column_interpolates_curve(self):
        rng = np.random.default_rng(11)
        block = _sss_block(rng, 40, context={"sss_curve": CURVE})
        cols = kernel.compute_columns(block, ("sss",))
        expected = np.maximum(
            np.interp(block.utilization, CURVE.utilizations, CURVE.sss_values),
            1.0,
        )
        np.testing.assert_array_equal(cols["sss"], expected)

    def test_decision_column_equals_decide_block_with_interpolated_sss(self):
        rng = np.random.default_rng(12)
        block = _sss_block(rng, 64, context={"sss_curve": CURVE})
        cols = kernel.compute_columns(block, ("sss", "decision", "tier"))
        codes = kernel.decide_block(block, sss=cols["sss"])
        np.testing.assert_array_equal(
            np.broadcast_to(codes, (block.n,)), cols["decision"]
        )

    def test_context_decision_matches_scalar_curve_join(self):
        rng = np.random.default_rng(13)
        block = _sss_block(rng, 32, context={"sss_curve": CURVE})
        cols = kernel.compute_columns(block, ("decision",))
        for i in range(block.n):
            params = BASE.replace(
                bandwidth_gbps=float(block.bandwidth_gbps[i]),
                s_unit_gb=float(block.s_unit_gb[i]),
            )
            d = decide(
                params,
                sss_curve=CURVE,
                utilization=float(block.utilization[i]),
            )
            assert strategy_from_code(cols["decision"][i]) is d.chosen, i

    def test_sss_column_without_context_rejected(self):
        block = kernel.ParamBlock.from_params(BASE)
        with pytest.raises(ValidationError, match="utilization"):
            kernel.compute_columns(block, ("sss",))

    def test_curve_without_utilization_axis_rejected(self):
        with pytest.raises(ValidationError, match="utilization"):
            kernel.ParamBlock.from_columns(
                {"bandwidth_gbps": np.array([25.0])},
                base=BASE,
                n=1,
                context={"sss_curve": CURVE},
            )

    def test_unknown_context_key_rejected(self):
        with pytest.raises(ValidationError, match="context keys"):
            kernel.ParamBlock.from_columns(
                {"bandwidth_gbps": np.array([25.0])},
                base=BASE,
                n=1,
                context={"magic": 1},
            )

    def test_curve_must_expose_arrays(self):
        with pytest.raises(ValidationError, match="utilizations"):
            kernel.sss_table_from_curve(object())

    def test_unsorted_curve_rejected(self):
        with pytest.raises(ValidationError, match="sorted"):
            kernel.sss_table_from_curve(_FakeCurve([0.8, 0.2], [2.0, 1.0]))

    def test_out_of_range_utilization_clamps_with_warning(self):
        block = kernel.ParamBlock.from_columns(
            {"utilization": np.array([0.01, 5.0])},
            base=BASE,
            n=2,
            context={"sss_curve": CURVE},
        )
        with pytest.warns(UserWarning, match="clamping"):
            cols = kernel.compute_columns(block, ("sss",))
        np.testing.assert_array_equal(
            cols["sss"], [CURVE.sss_values[0], CURVE.sss_values[-1]]
        )

    def test_sss_floored_at_ideal(self):
        """A borderline measurement below 1 (tolerated by the SSS
        validator's epsilon) can never claim to beat the raw link."""
        curve = _FakeCurve([0.1, 0.9], [1.0 - 1e-13, 3.0])
        block = kernel.ParamBlock.from_columns(
            {"utilization": np.array([0.1])},
            base=BASE,
            n=1,
            context={"sss_curve": curve},
        )
        assert kernel.compute_columns(block, ("sss",))["sss"][0] == 1.0

    def test_context_columns_partition(self):
        assert "sss" in kernel.CONTEXT_COLUMNS
        assert "sss" not in kernel.KERNEL_COLUMNS
        assert not set(kernel.CONTEXT_COLUMNS) & set(kernel.KERNEL_COLUMNS)
