"""Integration: measured-curve case study (scaled down).

Unlike ``test_casestudy.py`` (which uses a hand-made paper-shaped
curve), this runs the actual measurement methodology end to end on
short experiments and checks that the qualitative conclusions survive.
"""

from __future__ import annotations

import pytest

from repro.casestudy.lcls2 import run_case_study
from repro.measurement.congestion import measure_sss_curve

# Batched-engine era: the measured curve takes ~0.1 s, so this runs
# on the fast path too.


@pytest.fixture(scope="module")
def measured_report():
    curve = measure_sss_curve(
        concurrencies=(1, 4, 6, 8), duration_s=5.0, seeds=(0,)
    )
    return run_case_study(curve=curve)


class TestMeasuredConclusions:
    def test_coherent_fits_and_meets_tier2(self, measured_report):
        f = measured_report.finding("coherent")
        assert f.fits_link
        assert f.tier2.feasible
        # Worst case somewhere in the paper's ballpark (1-4 s band).
        assert 0.3 < f.worst_case_transfer_s < 5.0

    def test_coherent_leaves_analysis_budget(self, measured_report):
        f = measured_report.finding("coherent")
        assert f.tier2_analysis_budget_s > 5.0

    def test_liquid_rejected_by_link(self, measured_report):
        f = measured_report.finding("Liquid Scattering")
        assert not f.fits_link

    def test_reduced_liquid_tighter_than_coherent(self, measured_report):
        coherent = measured_report.finding("coherent")
        reduced = measured_report.finding("reduced")
        assert reduced.worst_case_transfer_s > coherent.worst_case_transfer_s
        if reduced.tier2.feasible:
            assert (
                reduced.tier2_analysis_budget_s
                < coherent.tier2_analysis_budget_s
            )

    def test_worst_case_monotone_in_utilization(self, measured_report):
        curve = measured_report.curve
        t_mid = curve.t_worst_at(0.64)
        t_hi = curve.t_worst_at(1.2)
        assert t_hi > t_mid
