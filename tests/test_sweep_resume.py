"""Crash/resume battery: killed streamed sweeps resume to byte-identical
directories, driven by the deterministic chaos harness.

The central claim of the recovery layer is *byte identity*: a sweep
killed at any shard boundary — before the rename, after the rename but
before the journal line, after the journal line — and then resumed must
produce exactly the bytes (shards and manifest; the journal is the
recovery mechanism itself) of a run that was never interrupted.  These
tests prove it with :class:`repro.testing.chaos.ChaosInjector` kills at
every boundary of a multi-shard grid, across the synchronous and
overlapped-IO writers, raw and compressed shards, the per-point and
block-function executors, and a real ``SIGKILL`` delivered to a child
process that is then resumed through the CLI.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import signal
import subprocess
import sys
import textwrap
import warnings

import pytest

from repro.cli import main as cli_main
from repro.core.parameters import aps_to_alcf_defaults
from repro.errors import ValidationError
from repro.resilience import RetryPolicy
from repro.sweep import (
    Axis,
    ShardedSweepResult,
    ShardWriter,
    SweepSpec,
    parallel_map,
    run_model_sweep,
    run_sweep,
)
from repro.sweep.shards import JOURNAL_NAME, MANIFEST_NAME
from repro.testing.chaos import ChaosInjector, SimulatedCrash

BASE = aps_to_alcf_defaults()
SHARD = 128


def small_spec(n_bw: int = 32, n_s: int = 20) -> SweepSpec:
    return SweepSpec.grid(
        Axis.geomspace("bandwidth_gbps", 1.0, 100.0, n_bw),
        Axis.geomspace("s_unit_gb", 0.1, 10.0, n_s),
    )


def dir_fingerprint(directory, include_journal: bool = False) -> dict:
    """``{filename: sha256}`` of a shard directory (journal excluded by
    default — it is the recovery mechanism, not the artifact)."""
    out = {}
    for path in sorted(pathlib.Path(directory).iterdir()):
        if path.name == JOURNAL_NAME and not include_journal:
            continue
        out[path.name] = hashlib.sha256(path.read_bytes()).hexdigest()
    return out


def reference_dir(tmp_path, name="ref", **kwargs):
    ref = tmp_path / name
    run_model_sweep(small_spec(), base=BASE, out=str(ref), block_size=SHARD, **kwargs)
    return ref


def crash_model_sweep(directory, chaos, compress=False, overlap_io=True):
    """Run the model sweep against a chaos-armed writer; assert it dies."""
    spec = small_spec()
    writer = ShardWriter(
        directory, shard_size=SHARD, axis_names=spec.axis_names,
        compress=compress, chaos=chaos,
    )
    with pytest.raises(SimulatedCrash):
        run_model_sweep(
            spec, base=BASE, out=writer, block_size=SHARD,
            compress=compress, overlap_io=overlap_io,
        )


class TestKillAtEveryBoundary:
    """The core battery: kill at shard k, stage s; resume; compare bytes."""

    @pytest.mark.parametrize("stage", ["pre-commit", "post-commit", "post-journal"])
    @pytest.mark.parametrize("kill_at", [0, 1, 3])
    @pytest.mark.parametrize(
        "overlap_io,compress",
        [(False, False), (True, False), (False, True), (True, True)],
    )
    def test_resume_byte_identity(self, tmp_path, stage, kill_at, overlap_io, compress):
        ref = reference_dir(tmp_path, compress=compress)
        run = tmp_path / "run"
        crash_model_sweep(
            run,
            ChaosInjector(kill_at_shard=kill_at, kill_stage=stage),
            compress=compress, overlap_io=overlap_io,
        )
        # The kill left an incomplete directory: no manifest yet.
        assert not (run / MANIFEST_NAME).exists()
        table = run_model_sweep(
            small_spec(), base=BASE, out=str(run), block_size=SHARD,
            compress=compress, overlap_io=overlap_io, resume=True,
        )
        assert table.n_rows == small_spec().n_points
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_resume_with_different_block_size_still_identical(self, tmp_path):
        # The writer re-buffers to shard_size whatever block sizes
        # arrive, so resuming with another block size changes nothing.
        ref = reference_dir(tmp_path)
        run = tmp_path / "run"
        crash_model_sweep(run, ChaosInjector(kill_at_shard=2))
        spec = small_spec()
        writer, completed = ShardWriter.resume(
            run, shard_size=SHARD, axis_names=spec.axis_names
        )
        assert completed == 3 * SHARD  # post-journal kill at shard 2
        run_model_sweep(spec, base=BASE, out=writer, block_size=57, resume=True)
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_journal_records_committed_prefix(self, tmp_path):
        run = tmp_path / "run"
        crash_model_sweep(run, ChaosInjector(kill_at_shard=2, kill_stage="pre-commit"))
        lines = [
            json.loads(line)
            for line in (run / JOURNAL_NAME).read_text().splitlines()
        ]
        assert lines[0]["type"] == "header"
        assert lines[1]["type"] == "schema"
        shards = [rec for rec in lines if rec["type"] == "shard"]
        assert [s["index"] for s in shards] == [0, 1]
        assert all(s["n_rows"] == SHARD for s in shards)
        assert all(len(s["sha256"]) == 64 for s in shards)
        assert shards[1]["row_start"] == SHARD
        assert shards[1]["row_stop"] == 2 * SHARD


class TestJournalRecovery:
    def test_torn_journal_line_recovery(self, tmp_path):
        # The crash tears the journal line for shard 2 mid-append: the
        # resumed run must distrust it and rewrite from shard 2.
        ref = reference_dir(tmp_path)
        run = tmp_path / "run"
        crash_model_sweep(run, ChaosInjector(torn_journal_at=2))
        run_model_sweep(
            small_spec(), base=BASE, out=str(run), block_size=SHARD, resume=True
        )
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_stale_journal_recovery(self, tmp_path):
        # Shard 1 is journaled (checksum and all) but its file was torn
        # afterwards: the journal is *stale* and resume must detect the
        # checksum mismatch and rewrite from shard 1.
        ref = reference_dir(tmp_path)
        run = tmp_path / "run"
        crash_model_sweep(
            run,
            ChaosInjector(torn_shard_at=1, kill_at_shard=1, kill_stage="post-journal"),
        )
        run_model_sweep(
            small_spec(), base=BASE, out=str(run), block_size=SHARD, resume=True
        )
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_manually_truncated_journal_tail(self, tmp_path):
        ref = reference_dir(tmp_path)
        run = tmp_path / "run"
        crash_model_sweep(run, ChaosInjector(kill_at_shard=3))
        journal = run / JOURNAL_NAME
        journal.write_bytes(journal.read_bytes()[:-17])  # tear the tail
        run_model_sweep(
            small_spec(), base=BASE, out=str(run), block_size=SHARD, resume=True
        )
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_corrupt_mid_journal_rejected(self, tmp_path):
        run = tmp_path / "run"
        crash_model_sweep(run, ChaosInjector(kill_at_shard=3))
        journal = run / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        lines[1] = "{definitely not json"
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValidationError, match="cannot be trusted"):
            run_model_sweep(
                small_spec(), base=BASE, out=str(run), block_size=SHARD, resume=True
            )


class TestResumeSemantics:
    def test_resume_on_fresh_directory(self, tmp_path):
        ref = reference_dir(tmp_path)
        run = tmp_path / "fresh"
        run_model_sweep(
            small_spec(), base=BASE, out=str(run), block_size=SHARD, resume=True
        )
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_resume_on_complete_directory_is_a_noop(self, tmp_path):
        ref = reference_dir(tmp_path)
        before = dir_fingerprint(ref, include_journal=True)
        table = run_model_sweep(
            small_spec(), base=BASE, out=str(ref), block_size=SHARD, resume=True
        )
        assert isinstance(table, ShardedSweepResult)
        assert table.n_rows == small_spec().n_points
        assert dir_fingerprint(ref, include_journal=True) == before

    def test_resume_requires_out(self):
        with pytest.raises(ValidationError, match="resume"):
            run_model_sweep(small_spec(), base=BASE, resume=True)
        with pytest.raises(ValidationError, match="resume"):
            run_sweep(small_spec(), fn=_noop_point, resume=True)

    def test_resume_param_mismatch_rejected(self, tmp_path):
        run = tmp_path / "run"
        crash_model_sweep(run, ChaosInjector(kill_at_shard=1))
        with pytest.raises(ValidationError, match="different parameters"):
            ShardWriter.resume(
                run, shard_size=SHARD * 2, axis_names=small_spec().axis_names
            )
        with pytest.raises(ValidationError, match="different parameters"):
            ShardWriter.resume(
                run, shard_size=SHARD, axis_names=small_spec().axis_names,
                compress=True,
            )

    def test_resume_spec_shrunk_rejected(self, tmp_path):
        run = tmp_path / "run"
        crash_model_sweep(run, ChaosInjector(kill_at_shard=3))
        shrunk = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 100.0, 2),
            Axis.geomspace("s_unit_gb", 0.1, 10.0, 2),
        )
        with pytest.raises(ValidationError, match="different sweep"):
            run_model_sweep(
                shrunk, base=BASE, out=str(run), block_size=SHARD, resume=True
            )


def _noop_point(point):
    return {"metric": point["bandwidth_gbps"] * 2.0}


def _block_points(points):
    return [{"metric": p["bandwidth_gbps"] * 2.0} for p in points]


class TestRunSweepResume:
    """The per-point / block-function executor paths resume too."""

    def _ref(self, tmp_path, **kwargs):
        ref = tmp_path / "ref"
        run_sweep(small_spec(), out=str(ref), block_size=SHARD, **kwargs)
        return ref

    def test_per_point_resume_byte_identity(self, tmp_path):
        ref = self._ref(tmp_path, fn=_noop_point)
        run = tmp_path / "run"
        spec = small_spec()
        writer = ShardWriter(
            run, shard_size=SHARD, axis_names=spec.axis_names,
            chaos=ChaosInjector(kill_at_shard=1, kill_stage="post-commit"),
        )
        with pytest.raises(SimulatedCrash):
            run_sweep(spec, fn=_noop_point, out=writer, block_size=SHARD)
        run_sweep(spec, fn=_noop_point, out=str(run), block_size=SHARD, resume=True)
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_block_fn_resume_byte_identity(self, tmp_path):
        ref = self._ref(tmp_path, block_fn=_block_points)
        run = tmp_path / "run"
        spec = small_spec()
        writer = ShardWriter(
            run, shard_size=SHARD, axis_names=spec.axis_names,
            chaos=ChaosInjector(kill_at_shard=2, kill_stage="pre-commit"),
        )
        with pytest.raises(SimulatedCrash):
            run_sweep(spec, block_fn=_block_points, out=writer, block_size=SHARD)
        run_sweep(
            spec, block_fn=_block_points, out=str(run), block_size=SHARD,
            resume=True,
        )
        assert dir_fingerprint(run) == dir_fingerprint(ref)

    def test_process_mode_resume_byte_identity(self, tmp_path):
        ref = self._ref(tmp_path, fn=_noop_point)
        run = tmp_path / "run"
        spec = small_spec()
        writer = ShardWriter(
            run, shard_size=SHARD, axis_names=spec.axis_names,
            chaos=ChaosInjector(kill_at_shard=1),
        )
        with pytest.raises(SimulatedCrash):
            run_sweep(spec, fn=_noop_point, out=writer, block_size=SHARD, workers=2)
        run_sweep(
            spec, fn=_noop_point, out=str(run), block_size=SHARD, workers=2,
            resume=True,
        )
        assert dir_fingerprint(run) == dir_fingerprint(ref)


class TestSigkillAndCli:
    """A literal SIGKILL mid-sweep, resumed through ``repro sweep --resume``."""

    CHILD = textwrap.dedent(
        """
        import sys
        from repro.core.parameters import aps_to_alcf_defaults
        from repro.sweep import Axis, ShardWriter, SweepSpec, run_model_sweep
        from repro.testing.chaos import ChaosInjector

        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 100.0, 32),
            Axis.geomspace("s_unit_gb", 0.1, 10.0, 20),
        )
        writer = ShardWriter(
            sys.argv[1], shard_size=128, axis_names=spec.axis_names,
            chaos=ChaosInjector(kill_at_shard=2, kill_stage="post-commit", hard=True),
        )
        run_model_sweep(spec, base=aps_to_alcf_defaults(), out=writer, block_size=128)
        raise SystemExit("the chaos SIGKILL never fired")
        """
    )

    def _cli_sweep(self, out_dir, *extra):
        return cli_main([
            "sweep",
            "--axis", "bandwidth_gbps=1:100:32:log",
            "--axis", "s_unit_gb=0.1:10:20:log",
            "--out-dir", str(out_dir), "--shard-size", "128",
            *extra,
        ])

    def test_sigkill_then_cli_resume_and_verify(self, tmp_path, capsys):
        ref = tmp_path / "ref"
        assert self._cli_sweep(ref) == 0
        run = tmp_path / "run"
        proc = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(run)],
            capture_output=True, text=True,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert not (run / MANIFEST_NAME).exists()
        assert self._cli_sweep(run, "--resume") == 0
        capsys.readouterr()
        assert dir_fingerprint(run) == dir_fingerprint(ref)
        # repro verify agrees: exit 0 on the resumed directory ...
        assert cli_main(["verify", str(run)]) == 0
        # ... and non-zero once a shard is deliberately corrupted.
        shard = run / "shard-00001.npz"
        shard.write_bytes(shard.read_bytes()[:100])
        assert cli_main(["verify", str(run)]) == 1
        capsys.readouterr()

    def test_simnet_table2_resume_byte_identity(self, tmp_path, capsys):
        # The --simnet-table2 streamed grid resumes too: manufacture the
        # post-journal-kill state (manifest gone, journal and shards
        # truncated to a two-shard prefix) and let --resume finish it.
        def table2(out_dir, *extra):
            return cli_main([
                "sweep", "--simnet-table2", "--duration", "1",
                "--out-dir", str(out_dir), "--shard-size", "10", *extra,
            ])

        ref = tmp_path / "ref"
        run = tmp_path / "run"
        assert table2(ref) == 0
        assert table2(run) == 0
        (run / MANIFEST_NAME).unlink()
        journal = run / JOURNAL_NAME
        records = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        kept = [
            r for r in records
            if r["type"] != "shard" or r["index"] < 2
        ]
        journal.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in kept)
        )
        (run / "shard-00002.npz").unlink()
        assert table2(run, "--resume") == 0
        capsys.readouterr()
        assert dir_fingerprint(run) == dir_fingerprint(ref)
        assert cli_main(["verify", str(run)]) == 0
        capsys.readouterr()

    def test_cli_resume_requires_out_dir(self):
        with pytest.raises(ValidationError, match="--out-dir"):
            cli_main([
                "sweep", "--axis", "bandwidth_gbps=1:100:4", "--resume",
            ])


class TestChaosExecutorSeams:
    def test_fail_read_retries_in_map_table_blocks(self, tmp_path):
        from repro.analysis._tables import map_table_blocks
        from repro.sweep.shards import ShardReader

        run = reference_dir(tmp_path)
        quick = RetryPolicy(attempts=3, base_delay_s=0.0)
        # Two injected read failures: absorbed by the 3-attempt policy.
        reader = ShardReader(run, chaos=ChaosInjector(fail_reads=2))
        table = ShardedSweepResult(reader)
        out = map_table_blocks(
            table, ["speedup"], lambda block: len(block["speedup"]), retry=quick
        )
        assert sum(out) == small_spec().n_points
        # More failures than attempts: the reader's actionable error
        # surfaces (wrapping the injected OSError).
        reader = ShardReader(run, chaos=ChaosInjector(fail_reads=99))
        with pytest.raises(ValidationError, match="corrupt or truncated"):
            map_table_blocks(
                ShardedSweepResult(reader), ["speedup"],
                lambda block: len(block["speedup"]), retry=quick,
            )

    def test_slow_worker_chunks_unaffect_results(self):
        chaos = ChaosInjector(slow_chunks=1, slow_s=0.01)
        out = parallel_map(_noop_point_metric, list(range(8)), workers=2, chaos=chaos)
        assert out == [i * 3 for i in range(8)]

    def test_parallel_map_retry_policy_reaches_shared_pool(self):
        seen = {}

        class FakeFuture:
            def __init__(self, payload):
                self.payload = payload

            def get(self, timeout=None):
                seen["timeout"] = timeout
                from repro.sweep.engine import _run_chunk

                return _run_chunk(self.payload)

        class FakePool:
            def apply_async(self, fn, args):
                return FakeFuture(args[0])

        policy = RetryPolicy(attempts=1, base_delay_s=0.0, timeout_s=12.5)
        out = parallel_map(
            _noop_point_metric, [1, 2, 3], workers=2, retry=policy,
            _pool=FakePool(),
        )
        assert out == [3, 6, 9]
        assert seen["timeout"] == 12.5

    def test_shared_pool_failure_degrades_in_process(self):
        class DeadPool:
            def apply_async(self, fn, args):
                raise BrokenPipeError("pool is gone")

        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            out = parallel_map(
                _noop_point_metric, [1, 2], workers=2,
                retry=RetryPolicy(attempts=1, base_delay_s=0.0),
                _pool=DeadPool(),
            )
        assert out == [3, 6]
        assert any("degrading to in-process" in str(w.message) for w in rec)


def _noop_point_metric(i):
    return i * 3
