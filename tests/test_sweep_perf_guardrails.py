"""Fast perf guardrails for the sweep pipeline and batched measurement.

These run in the tier-1 suite (no pytest-benchmark dependency, small
grids, generous thresholds) and pin the properties the fast paths
exist for:

1. *flat memory* — peak incremental allocation while streaming is
   bounded by the block size, not the grid size (``tracemalloc``),
2. *vectorized blocks* — per-block broadcast evaluation beats the
   per-point Python loop by a wide margin,
3. *batched measurement* — the experiment-batched simnet engine runs
   the Table-2 congestion grid >= 3x faster than one sequential
   simulator per experiment, bit-identically,
4. *kernel backends* — compiled backends are bit-identical to the
   numpy reference at guardrail scale and clear a 2x hot-path floor
   where their dependency is installed (the accel CI job),
5. *overlapped streaming & mmap scans* — the double-buffered shard
   writer genuinely pipelines IO against compute (deterministic
   sleep-dominated harness; real-workload wall clock lives in
   ``benchmarks/bench_kernel_backend.py``) without unflattening the
   streamed memory profile, and mmap shard scans beat re-inflating
   compressed shards >= 2x with identical tallies.

``benchmarks/bench_sweep_shards.py``, ``benchmarks/bench_simnet_batch.py``
and ``benchmarks/bench_kernel_backend.py`` measure the same claims at
full scale with tighter thresholds.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from functools import partial

import numpy as np
import pytest

from repro.core import kernel
from repro.core.backend import backend_ready
from repro.core.parameters import aps_to_alcf_defaults
from repro.sweep import (
    Axis,
    ShardReader,
    SweepSpec,
    evaluate_point,
    run_model_sweep,
)

BASE = aps_to_alcf_defaults()


def _grid(n_bw: int, n_c: int) -> SweepSpec:
    return SweepSpec.grid(
        Axis.geomspace("bandwidth_gbps", 1.0, 400.0, n_bw),
        Axis.geomspace("complexity_flop_per_gb", 1e10, 1e14, n_c),
    )


def _streamed_peak(spec: SweepSpec, out_dir, block_size: int) -> int:
    tracemalloc.start()
    try:
        run_model_sweep(spec, base=BASE, out=out_dir, block_size=block_size)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


@pytest.mark.bench
def test_streamed_sweep_memory_is_flat_and_below_materialised(tmp_path):
    """Streaming a 8x larger grid at the same block size must not cost
    8x the memory (flatness), and must stay well under materialising
    the large grid outright."""
    small = _grid(100, 150)  # 15k points
    large = _grid(400, 300)  # 120k points
    block = 10_000

    peak_small = _streamed_peak(small, tmp_path / "small", block)
    peak_large = _streamed_peak(large, tmp_path / "large", block)

    tracemalloc.start()
    try:
        table = run_model_sweep(large, base=BASE)
        _, peak_materialised = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert table.n_rows == large.n_points

    assert peak_large < 2.5 * peak_small, (
        f"streamed peak should be ~flat in grid size: 15k-point peak "
        f"{peak_small / 1e6:.1f} MB vs 120k-point peak {peak_large / 1e6:.1f} MB"
    )
    assert peak_large < peak_materialised / 2, (
        f"streamed peak {peak_large / 1e6:.1f} MB should be well below the "
        f"materialised peak {peak_materialised / 1e6:.1f} MB"
    )


@pytest.mark.bench
def test_vectorized_block_evaluation_beats_per_point_loop(tmp_path):
    """Per-block broadcast evaluation must be far faster per point than
    the per-point Python loop it replaces (conservative 25x floor here;
    the benchmark pins >=100x at scale)."""
    spec = _grid(300, 200)  # 60k points
    t0 = time.perf_counter()
    run_model_sweep(spec, base=BASE, out=tmp_path / "shards", block_size=10_000)
    per_point_vectorized = (time.perf_counter() - t0) / spec.n_points

    loop_points = list(_grid(20, 20).points())  # 400-point sample
    fn = partial(evaluate_point, base=BASE.as_dict())
    t0 = time.perf_counter()
    for pt in loop_points:
        fn(pt)
    per_point_loop = (time.perf_counter() - t0) / len(loop_points)

    speedup = per_point_loop / per_point_vectorized
    assert speedup >= 25, (
        f"vectorized block evaluation should be >=25x the per-point loop, "
        f"got {speedup:.0f}x"
    )


@pytest.mark.bench
@pytest.mark.slow
def test_batched_simnet_grid_at_least_3x_sequential():
    """The batched engine must clear the 3x floor on the full Table-2
    grid (24 specs x 2 seeds) against one sequential simulator per
    experiment — with bit-identical worst-case times.  Each measurement
    round interleaves the two sides (so load/thermal drift hits both),
    and a round below the floor is re-measured once before failing —
    wall-clock guardrails on shared runners must not flake on one
    scheduler hiccup."""
    from repro.iperfsim.runner import run_experiment, run_sweep
    from repro.iperfsim.spec import SpawnStrategy, table2_sweep

    specs = table2_sweep(strategy=SpawnStrategy.BATCH, duration_s=10.0)
    seeds = (0, 1)

    speedups = []
    for _ in range(2):
        t0 = time.perf_counter()
        sequential = [
            run_experiment(spec, seed=seed) for spec in specs for seed in seeds
        ]
        t_seq = time.perf_counter() - t0

        t0 = time.perf_counter()
        batched = run_sweep(specs, seeds=seeds)
        t_batch = time.perf_counter() - t0

        # Bit-identity of the headline metric across every grid cell.
        for k, exp in enumerate(batched.experiments):
            worst_sequential = max(
                max(sequential[k * len(seeds) + rep].client_times_s.values())
                for rep in range(len(seeds))
            )
            assert exp.max_transfer_time_s == worst_sequential, specs[k].label()

        speedups.append(t_seq / t_batch)
        if speedups[-1] >= 3.0:
            break

    assert max(speedups) >= 3.0, (
        f"batched Table-2 grid should be >=3x the sequential path in at "
        f"least one of two rounds, got {[f'{s:.1f}x' for s in speedups]}"
    )


@pytest.mark.bench
def test_mixed_cc_batched_grid_within_2x_of_single_cc():
    """The congestion-control zoo's masked per-CC updates must not blow
    up the batched fast path: on the Table-2 grid (shortened to 2 s
    here; the benchmark runs full scale), the mixed-CC batch costs at
    most 2x the pure-Reno batch *per experiment*.  Interleaved rounds
    with one re-measure, like the other wall-clock guardrails."""
    from repro.iperfsim.runner import run_sweep
    from repro.iperfsim.spec import SpawnStrategy, table2_sweep

    reno_specs = table2_sweep(strategy=SpawnStrategy.BATCH, duration_s=2.0)
    mixed_specs = table2_sweep(
        strategy=SpawnStrategy.BATCH, duration_s=2.0,
        cc=("reno", "dctcp", "delay"),
    )
    seeds = (0,)

    ratios = []
    for _ in range(2):
        t0 = time.perf_counter()
        reno = run_sweep(reno_specs, seeds=seeds)
        t_reno = time.perf_counter() - t0

        t0 = time.perf_counter()
        mixed = run_sweep(mixed_specs, seeds=seeds)
        t_mixed = time.perf_counter() - t0

        ratios.append(
            (t_mixed / len(mixed_specs)) / (t_reno / len(reno_specs))
        )
        if ratios[-1] <= 2.0:
            break

    # Composition never changes results: the Reno third of the mixed
    # batch (cc is the slowest axis) equals the pure-Reno grid.
    for a, b in zip(reno.experiments, mixed.experiments[: len(reno_specs)]):
        assert a.client_times_s == b.client_times_s, a.spec.label()

    assert min(ratios) <= 2.0, (
        f"mixed-CC batch should stay within 2x of single-CC per "
        f"experiment in at least one of two rounds, got "
        f"{[f'{r:.2f}x' for r in ratios]}"
    )


@pytest.mark.bench
def test_noop_fault_schedule_keeps_batch_path_within_1_05x():
    """Fault injection must be free when unused: the batched Table-2
    grid with an explicit no-op fault schedule on every experiment
    (zero-length outage — the ``outage_s == 0`` sweep axis value) must
    cost within 1.05x of the same grid with no schedule at all, because
    no-op schedules are detected up front and the masked fault updates
    never engage.  Best-of-3 interleaved rounds: a 5 % wall-clock bar
    needs the tightest round, not the average."""
    import dataclasses

    from repro.iperfsim.runner import run_sweep
    from repro.iperfsim.spec import SpawnStrategy, table2_sweep
    from repro.simnet.faults import FaultEvent

    plain_specs = table2_sweep(strategy=SpawnStrategy.BATCH, duration_s=2.0)
    # A non-empty schedule whose every event is a no-op (zero-length
    # outage): the engines must detect it and skip the fault machinery.
    noop = (FaultEvent(1.0, 0.0, 0.0),)
    noop_specs = [
        dataclasses.replace(spec, faults=noop) for spec in plain_specs
    ]
    seeds = (0,)

    run_sweep(plain_specs, seeds=seeds)  # warm-up
    t_plain = float("inf")
    t_noop = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        plain = run_sweep(plain_specs, seeds=seeds)
        t_plain = min(t_plain, time.perf_counter() - t0)

        t0 = time.perf_counter()
        noop = run_sweep(noop_specs, seeds=seeds)
        t_noop = min(t_noop, time.perf_counter() - t0)

    # No-op schedules are also bit-free, not just cheap.
    for a, b in zip(plain.experiments, noop.experiments):
        assert a.client_times_s == b.client_times_s, a.spec.label()

    assert t_noop <= 1.05 * t_plain, (
        f"no-op fault schedules should keep the batched grid within "
        f"1.05x of the fault-free path, got {t_noop / t_plain:.3f}x "
        f"({t_noop * 1e3:.0f} ms vs {t_plain * 1e3:.0f} ms)"
    )


@pytest.mark.bench
def test_multilink_batched_grid_within_2x_of_single_link():
    """The flow x link multilink engine must not blow up the batched
    fast path: the cross-facility Table-2 grid (three contended links
    per experiment, shortened to 2 s here; the benchmark runs full
    scale) costs at most 2x the single-bottleneck grid *per
    experiment*.  Interleaved rounds with one re-measure, like the
    other wall-clock guardrails."""
    from repro.iperfsim.runner import run_sweep
    from repro.iperfsim.spec import SpawnStrategy, table2_sweep
    from repro.simnet.topology import cross_facility_testbed

    single_specs = table2_sweep(strategy=SpawnStrategy.BATCH, duration_s=2.0)
    routed_specs = table2_sweep(
        strategy=SpawnStrategy.BATCH, duration_s=2.0,
        topology=cross_facility_testbed(), route=("edge", "hpc"),
    )
    seeds = (0,)

    ratios = []
    for _ in range(2):
        t0 = time.perf_counter()
        single = run_sweep(single_specs, seeds=seeds)
        t_single = time.perf_counter() - t0

        t0 = time.perf_counter()
        routed = run_sweep(routed_specs, seeds=seeds)
        t_routed = time.perf_counter() - t0

        ratios.append(
            (t_routed / len(routed_specs)) / (t_single / len(single_specs))
        )
        if ratios[-1] <= 2.0:
            break

    # Both grids normalise against a 25 Gbps bottleneck, so the
    # offered-load axis is shared cell for cell.
    for a, b in zip(single.experiments, routed.experiments):
        assert a.offered_utilization == b.offered_utilization, a.spec.label()

    assert min(ratios) <= 2.0, (
        f"multilink batch should stay within 2x of single-link per "
        f"experiment in at least one of two rounds, got "
        f"{[f'{r:.2f}x' for r in ratios]}"
    )


class _GuardrailCurve:
    """Synthetic measured curve (sorted utilisation -> SSS)."""

    def __init__(self):
        import numpy as np

        self.utilizations = np.linspace(0.1, 1.3, 9)
        self.sss_values = np.linspace(1.0, 40.0, 9)


@pytest.mark.bench
def test_sss_join_stays_within_2x_of_nominal_decision_path():
    """Joining a measured SSS curve (interpolation + worst-case stack)
    onto the 10k-point grid must cost at most 2x the nominal
    decision/tier fast path — the join is one np.interp and two
    np.maximum per block, not a per-point detour."""
    spec = SweepSpec.grid(
        Axis.linspace("utilization", 0.1, 1.3, 100),
        Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 100),
    )
    context = {"sss_curve": _GuardrailCurve()}

    def best_of(fn, repeats=3):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    run_model_sweep(spec, base=BASE, metrics=("decision", "tier"))  # warm-up
    t_nominal = best_of(
        lambda: run_model_sweep(spec, base=BASE, metrics=("decision", "tier"))
    )
    t_sss = best_of(
        lambda: run_model_sweep(
            spec, base=BASE, metrics=("sss", "decision", "tier"),
            context=context,
        )
    )
    assert t_sss <= 2.0 * t_nominal, (
        f"sss-joined decision sweep took {t_sss * 1e3:.1f} ms vs nominal "
        f"{t_nominal * 1e3:.1f} ms ({t_sss / t_nominal:.2f}x > 2x budget) "
        f"on the {spec.n_points}-point grid"
    )


# ----------------------------------------------------------------------
# Kernel-backend guardrails (PR 8)
# ----------------------------------------------------------------------
_COMPILED_BACKENDS = ("numba", "numexpr")


@pytest.mark.bench
@pytest.mark.parametrize(
    "backend_name",
    [
        pytest.param(
            name,
            marks=pytest.mark.skipif(
                not backend_ready(name),
                reason=f"compiled backend {name!r} is not installed",
            ),
        )
        for name in _COMPILED_BACKENDS
    ],
)
def test_kernel_backend_bit_identical_on_10k_grid(backend_name):
    """Every compiled backend must reproduce the numpy reference bit
    for bit on the 10k hot-path grid — the precondition that makes the
    backend swap a pure perf decision.  (Skips where the dependency is
    absent; the accel CI job runs it for real.)"""
    spec = _grid(100, 100)
    ref = run_model_sweep(
        spec, base=BASE, metrics=kernel.KERNEL_COLUMNS, backend="numpy"
    )
    alt = run_model_sweep(
        spec, base=BASE, metrics=kernel.KERNEL_COLUMNS, backend=backend_name
    )
    for col in ref.columns:
        a, b = ref.column(col), alt.column(col)
        assert a.dtype == b.dtype, col
        assert a.tobytes() == b.tobytes(), col


@pytest.mark.bench
@pytest.mark.skipif(
    not any(backend_ready(name) for name in _COMPILED_BACKENDS),
    reason="no compiled kernel backend installed",
)
def test_compiled_backend_at_least_2x_on_10k_grid():
    """A compiled backend must clear a 2x floor over the numpy
    reference on the 10k-point all-columns hot path (the benchmark pins
    the headline M pts/s at 1M-point scale).  Interleaved best-of-3
    after a JIT warm-up round; the fastest installed backend carries
    the guardrail."""
    name = next(n for n in _COMPILED_BACKENDS if backend_ready(n))
    spec = _grid(100, 100)
    metrics = kernel.KERNEL_COLUMNS

    run_model_sweep(spec, base=BASE, metrics=metrics, backend=name)  # warm-up
    run_model_sweep(spec, base=BASE, metrics=metrics, backend="numpy")

    t_numpy = float("inf")
    t_compiled = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        run_model_sweep(spec, base=BASE, metrics=metrics, backend="numpy")
        t_numpy = min(t_numpy, time.perf_counter() - t0)

        t0 = time.perf_counter()
        run_model_sweep(spec, base=BASE, metrics=metrics, backend=name)
        t_compiled = min(t_compiled, time.perf_counter() - t0)

    assert t_compiled * 2.0 <= t_numpy, (
        f"compiled backend {name!r} should be >=2x the numpy reference on "
        f"the {spec.n_points}-point grid, got "
        f"{t_numpy / t_compiled:.2f}x ({t_compiled * 1e3:.1f} ms vs "
        f"{t_numpy * 1e3:.1f} ms)"
    )


@pytest.mark.bench
def test_overlapped_streaming_pipelines_write_against_compute():
    """``_stream_overlapped`` must genuinely run shard appends
    concurrently with producing the next block.  Deterministic harness:
    producer and writer each sleep a fixed quantum per block, so the
    synchronous loop costs ~N*(P+W) while the pipeline costs
    ~N*max(P,W) — a 1.7x gap with P == W that survives any scheduler
    noise (sleeps dominate).  Real-workload wall clock is recorded by
    ``benchmarks/bench_kernel_backend.py``, where page-cache-backed
    temp dirs make raw write latency too machine-dependent to pin."""
    from repro.sweep.engine import _stream_overlapped
    from repro.sweep.result import SweepResult

    quantum = 0.02
    n_blocks = 6

    def blocks():
        for _ in range(n_blocks):
            time.sleep(quantum)  # stands in for kernel evaluation
            yield SweepResult(
                columns={"x": np.arange(4.0)}, axis_names=("x",)
            )

    class SleepWriter:
        def __init__(self):
            self.appended = 0

        def append(self, columns):
            time.sleep(quantum)
            self.appended += 1

    ratios = []
    for _ in range(2):
        sync_writer = SleepWriter()
        t0 = time.perf_counter()
        for block in blocks():
            sync_writer.append(block.columns)
        t_sync = time.perf_counter() - t0

        overlap_writer = SleepWriter()
        t0 = time.perf_counter()
        _stream_overlapped(blocks(), overlap_writer)
        t_overlap = time.perf_counter() - t0

        assert sync_writer.appended == overlap_writer.appended == n_blocks
        ratios.append(t_sync / t_overlap)
        if ratios[-1] >= 1.3:
            break

    assert max(ratios) >= 1.3, (
        f"overlapped streaming should pipeline writes against compute "
        f"(~1.7x with equal quanta), got {[f'{r:.2f}x' for r in ratios]}"
    )


@pytest.mark.bench
def test_overlapped_streaming_keeps_memory_flat(tmp_path):
    """Double-buffering holds at most two blocks in flight, so the
    overlapped sweep's peak allocation must stay within ~2x of the
    synchronous loop's — the streamed path's flat-memory guarantee
    survives the writer thread."""
    spec = _grid(300, 200)  # 60k points
    block = 4_000

    tracemalloc.start()
    try:
        run_model_sweep(
            spec, base=BASE, out=tmp_path / "sync", block_size=block,
            overlap_io=False,
        )
        _, peak_sync = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    tracemalloc.start()
    try:
        run_model_sweep(
            spec, base=BASE, out=tmp_path / "overlap", block_size=block,
            overlap_io=True,
        )
        _, peak_overlap = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()

    assert peak_overlap < 2.5 * peak_sync, (
        f"overlapped streaming should keep peak memory within ~2 blocks: "
        f"sync peak {peak_sync / 1e6:.1f} MB vs overlapped peak "
        f"{peak_overlap / 1e6:.1f} MB"
    )


@pytest.mark.bench
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="integrity hashing overlaps compute on a worker thread; the "
    "1.25x budget needs a second core for that thread to run on",
)
def test_integrity_writes_within_1_25x_of_bare_path(tmp_path):
    """The crash journal + per-shard sha256 checksums (on by default
    since the recovery layer) must cost at most 1.25x the bare PR-9
    write path on a 60k-point streamed sweep — the digest + journal
    line are computed on a worker thread that overlaps the producer's
    next block, so with a core to run on they mostly vanish.
    Interleaved best-of-5 rounds after a warm-up, like the other
    wall-clock guardrails; ``benchmarks/bench_sweep_shards.py``
    measures the same budget at 200k-point scale."""
    from repro.sweep import ShardWriter

    spec = _grid(300, 200)  # 60k points
    block = 10_000

    def streamed(directory, integrity):
        writer = ShardWriter(
            directory, shard_size=block, axis_names=spec.axis_names,
            integrity=integrity,
        )
        t0 = time.perf_counter()
        run_model_sweep(spec, base=BASE, out=writer, block_size=block)
        return time.perf_counter() - t0

    streamed(tmp_path / "warmup", integrity=True)
    t_bare = float("inf")
    t_journaled = float("inf")
    for round_idx in range(5):
        t_bare = min(t_bare, streamed(tmp_path / f"bare-{round_idx}", False))
        t_journaled = min(
            t_journaled, streamed(tmp_path / f"journaled-{round_idx}", True)
        )

    assert t_journaled <= 1.25 * t_bare, (
        f"journaled+checksummed writes should stay within 1.25x of the "
        f"bare write path, got {t_journaled / t_bare:.3f}x "
        f"({t_journaled * 1e3:.0f} ms vs {t_bare * 1e3:.0f} ms)"
    )


@pytest.mark.bench
def test_mmap_scan_at_least_2x_deflate_scan(tmp_path):
    """Incremental tally scans over an uncompressed shard directory
    (memory-mapped raw ``.npy`` members, zero-copy) must run >= 2x
    faster than the same scan re-inflating compressed shards — with
    identical tallies.  160k points here; the benchmark measures the
    1M-point directory.  Interleaved best-of-3 rounds."""
    spec = _grid(400, 400)  # 160k points
    metrics = ("t_local", "t_pct", "speedup", "decision", "tier")
    d_plain, d_comp = tmp_path / "plain", tmp_path / "comp"
    run_model_sweep(
        spec, base=BASE, metrics=metrics, out=d_plain, block_size=16_384
    )
    run_model_sweep(
        spec, base=BASE, metrics=metrics, out=d_comp, block_size=16_384,
        compress=True,
    )

    scan_cols = ("speedup", "t_pct", "decision")

    def tally(reader):
        counts = np.zeros(3, dtype=np.int64)
        total = 0.0
        for block in reader.iter_blocks(columns=scan_cols):
            counts += np.bincount(block["decision"], minlength=3)
            total += float(block["speedup"].sum())
            total += float(block["t_pct"].sum())
        return tuple(counts), total

    tally(ShardReader(d_plain))  # warm the page cache on both dirs
    tally(ShardReader(d_comp))

    t_mmap = float("inf")
    t_deflate = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        mapped_tally = tally(ShardReader(d_plain, mmap=True))
        t_mmap = min(t_mmap, time.perf_counter() - t0)

        t0 = time.perf_counter()
        deflate_tally = tally(ShardReader(d_comp))
        t_deflate = min(t_deflate, time.perf_counter() - t0)

    assert mapped_tally == deflate_tally
    assert t_mmap * 2.0 <= t_deflate, (
        f"mmap scan should be >=2x the deflate scan, got "
        f"{t_deflate / t_mmap:.2f}x ({t_mmap * 1e3:.1f} ms vs "
        f"{t_deflate * 1e3:.1f} ms)"
    )
