"""Synthetic frame-arrival traces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.workloads.traces import bursty_trace, deterministic_trace, jittered_trace


class TestDeterministic:
    def test_uniform(self):
        t = deterministic_trace(5, 0.1)
        np.testing.assert_allclose(t, [0.1, 0.2, 0.3, 0.4, 0.5])

    def test_validation(self):
        with pytest.raises(ValidationError):
            deterministic_trace(0, 0.1)
        with pytest.raises(ValidationError):
            deterministic_trace(5, 0.0)


class TestJittered:
    def test_monotone(self):
        t = jittered_trace(500, 0.033, jitter_frac=0.3, seed=1)
        assert np.all(np.diff(t) > 0)

    def test_mean_interval_close_to_nominal(self):
        t = jittered_trace(5000, 0.033, jitter_frac=0.1, seed=0)
        assert np.mean(np.diff(t)) == pytest.approx(0.033, rel=0.05)

    def test_reproducible(self):
        np.testing.assert_array_equal(
            jittered_trace(100, 0.033, seed=7), jittered_trace(100, 0.033, seed=7)
        )

    def test_zero_jitter_is_deterministic(self):
        np.testing.assert_allclose(
            jittered_trace(10, 0.1, jitter_frac=0.0, seed=0),
            deterministic_trace(10, 0.1),
        )

    def test_jitter_frac_bounds(self):
        with pytest.raises(ValidationError):
            jittered_trace(10, 0.1, jitter_frac=1.0)

    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_always_monotone_property(self, seed):
        t = jittered_trace(50, 0.01, jitter_frac=0.5, seed=seed)
        assert np.all(np.diff(t) > 0)


class TestBursty:
    def test_burst_structure(self):
        # Bursts of 3 at 0.1 s spacing, 1 s gap.
        t = bursty_trace(6, burst_size=3, intra_burst_interval_s=0.1,
                         inter_burst_gap_s=1.0)
        np.testing.assert_allclose(t[:3], [0.1, 0.2, 0.3])
        np.testing.assert_allclose(t[3:], [1.4, 1.5, 1.6])

    def test_monotone(self):
        t = bursty_trace(100, 7, 0.01, 0.5)
        assert np.all(np.diff(t) > 0)

    def test_zero_gap_degenerates_to_uniform(self):
        t = bursty_trace(10, 5, 0.1, 0.0)
        np.testing.assert_allclose(np.diff(t), 0.1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            bursty_trace(0, 1, 0.1, 0.1)
        with pytest.raises(ValidationError):
            bursty_trace(10, 0, 0.1, 0.1)
        with pytest.raises(ValidationError):
            bursty_trace(10, 1, 0.1, -0.1)


class TestPipelineIntegration:
    def test_jittered_trace_drives_streaming(self, small_scan):
        from repro.streaming.pipeline import StreamingPipeline
        from repro.streaming.transfer_models import EffectiveRateTransfer

        trace = jittered_trace(
            small_scan.n_frames, small_scan.frame_interval_s, seed=3
        )
        net = EffectiveRateTransfer(bandwidth_gbps=25.0, alpha=0.8, rtt_s=0.016)
        res = StreamingPipeline(small_scan, net, frame_times_s=trace).run()
        assert res.completion_s > trace[-1]
