"""Facility presets vs the numbers quoted in Section 2.2."""

from __future__ import annotations

import pytest

from repro.workloads.facilities import (
    all_facilities,
    aps_tomography,
    frib_deleria,
    lcls2_imaging,
    lhc_atlas,
)


class TestLhc:
    def test_raw_rate_is_tens_of_tb_per_s(self):
        # "generating raw data rates up to 40 TB/s"
        lhc = lhc_atlas()
        assert lhc.raw_rate_gbytes_per_s == pytest.approx(40_000, rel=0.05)

    def test_reduced_to_about_1_gb_per_s(self):
        # "reduced to approximately 1 GB/s for permanent storage"
        assert lhc_atlas().shipped_rate_gbytes_per_s == pytest.approx(1.0, rel=0.05)


class TestLcls2:
    def test_2023_raw_rate(self):
        # "data rates scaling from 200 GB/s in 2023"
        inst = lcls2_imaging(2023)
        assert inst.raw_rate_gbytes_per_s == pytest.approx(200.0, rel=0.05)

    def test_2029_raw_rate(self):
        # "to more than 1 TB/s in 2029"
        inst = lcls2_imaging(2029)
        assert inst.raw_rate_gbytes_per_s == pytest.approx(1000.0, rel=0.05)

    def test_drp_reduction_order_of_magnitude(self):
        # "reduces data volume by an order of magnitude"
        assert lcls2_imaging().reduction_factor == pytest.approx(10.0)

    def test_2029_is_mhz_class(self):
        assert lcls2_imaging(2029).frame_rate_hz == pytest.approx(1e6)


class TestAps:
    def test_frame_geometry(self):
        inst = aps_tomography()
        assert inst.frame.nbytes == 2048 * 2048 * 2

    def test_rate_is_tens_of_gbps(self):
        # "data rates reaching 10s of GB/s" — at the fast Figure-4 cadence
        # a single detector ships ~0.25 GB/s; the facility aggregates many.
        inst = aps_tomography(0.033)
        assert 0.1 < inst.shipped_rate_gbytes_per_s < 1.0

    def test_custom_interval(self):
        assert aps_tomography(0.33).frame_interval_s == 0.33


class TestDeleria:
    def test_raw_rate_40_gbps(self):
        # "streams gamma-ray detector data ... at 40 Gbps"
        assert frib_deleria().raw_rate_gbytes_per_s * 8 == pytest.approx(
            40.0, rel=0.05
        )

    def test_event_stream_240_mb_per_s(self):
        # "producing a 240 MB/s event stream" (97.5 % reduction of 5 GB/s
        # gives 125 MB/s per polarity; we model the aggregate at ~125-250).
        shipped = frib_deleria().shipped_rate_gbytes_per_s
        assert 0.1 < shipped < 0.3


class TestAll:
    def test_all_facilities_listed(self):
        names = {i.name for i in all_facilities()}
        assert len(names) == 4

    def test_all_have_positive_rates(self):
        for inst in all_facilities():
            assert inst.shipped_rate_gbytes_per_s > 0
