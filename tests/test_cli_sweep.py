"""The ``repro sweep`` CLI command: parsing, formats, determinism."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

BASE_ARGS = ["sweep", "--axis", "bandwidth_gbps=5,25,100"]


class TestSpecParsing:
    def test_requires_some_axis(self, capsys):
        with pytest.raises(Exception, match="--axis, --zip or --facilities"):
            main(["sweep"])

    def test_malformed_axis_rejected(self):
        with pytest.raises(Exception, match="axis"):
            main(["sweep", "--axis", "nonsense"])

    def test_bad_set_override_rejected(self):
        with pytest.raises(Exception, match="--set"):
            main(BASE_ARGS + ["--set", "theta"])

    def test_unknown_set_parameter_rejected(self):
        with pytest.raises(Exception, match="unknown base parameter"):
            main(BASE_ARGS + ["--set", "warp_factor=9"])

    def test_zero_bandwidth_names_axis(self):
        with pytest.raises(Exception, match="bandwidth_gbps"):
            main(["sweep", "--axis", "bandwidth_gbps=0,25"])


class TestOutputFormats:
    def test_table_format(self, capsys):
        assert main(BASE_ARGS) == 0
        out = capsys.readouterr().out
        assert "Scenario sweep (3 points" in out
        assert "bandwidth_gbps" in out and "t_pct" in out

    def test_json_format(self, capsys):
        assert main(BASE_ARGS + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_rows"] == 3
        assert payload["axis_names"] == ["bandwidth_gbps"]
        assert len(payload["columns"]["speedup"]) == 3

    def test_csv_format(self, capsys):
        assert main(BASE_ARGS + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("bandwidth_gbps,")
        assert len(lines) == 4

    def test_output_file(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        assert main(BASE_ARGS + ["--format", "json", "--output", str(path)]) == 0
        assert json.loads(path.read_text())["n_rows"] == 3

    def test_metric_selection(self, capsys):
        assert main(BASE_ARGS + ["--metrics", "t_pct,speedup", "--format", "csv"]) == 0
        header = capsys.readouterr().out.splitlines()[0]
        assert header == "bandwidth_gbps,t_pct,speedup"

    def test_crossover_summary(self, capsys):
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:50:log",
             "--crossover-x", "bandwidth_gbps"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup=1 crossovers along bandwidth_gbps" in out

    def test_crossover_works_without_speedup_in_metrics(self, capsys):
        """--crossover-x must not crash when --metrics omits speedup;
        the speedup column is added for the summary."""
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:50:log",
             "--metrics", "t_pct", "--crossover-x", "bandwidth_gbps"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup=1 crossovers along bandwidth_gbps" in out

    def test_crossover_keeps_json_stdout_parseable(self, capsys):
        """With --format json the crossover summary goes to stderr so
        stdout stays machine-readable."""
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:10:log",
             "--format", "json", "--crossover-x", "bandwidth_gbps"]
        ) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # must parse cleanly
        assert "crossovers along bandwidth_gbps" in captured.err

    def test_unknown_metric_rejected_in_process_mode_too(self):
        with pytest.raises(Exception, match="unknown sweep metrics"):
            main(BASE_ARGS + ["--metrics", "nope", "--mode", "process"])

    def test_output_file_includes_crossover_summary(self, capsys, tmp_path):
        """The saved table must match stdout, crossover summary included."""
        path = tmp_path / "sweep.txt"
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:10:log",
             "--crossover-x", "bandwidth_gbps", "--output", str(path)]
        ) == 0
        out = capsys.readouterr().out
        saved = path.read_text()
        assert "speedup=1 crossovers along bandwidth_gbps" in saved
        assert saved.strip() == out.strip()

    def test_facilities_block(self, capsys):
        assert main(
            ["sweep", "--facilities", "--axis", "bandwidth_gbps=25,100",
             "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        assert "APS tomography" in out and "FRIB/DELERIA" in out
        assert len(out.strip().splitlines()) == 1 + 4 * 2

    def test_zip_axes(self, capsys):
        assert main(
            ["sweep", "--zip", "s_unit_gb=1,2", "--zip", "bandwidth_gbps=25,100",
             "--format", "csv"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # zipped, not a 2x2 product


class TestDeterminism:
    """Identical output across modes and worker counts."""

    def _run(self, extra):
        from repro.cli import main as cli_main
        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            assert cli_main(BASE_ARGS + ["--format", "csv"] + extra) == 0
        return buf.getvalue()

    def test_process_mode_matches_vectorized(self):
        vec = self._run(["--mode", "vectorized"])
        proc = self._run(["--mode", "process"])
        vec_rows = [line.split(",") for line in vec.strip().splitlines()]
        proc_rows = [line.split(",") for line in proc.strip().splitlines()]
        assert vec_rows[0] == proc_rows[0]
        for a, b in zip(vec_rows[1:], proc_rows[1:]):
            for x, y in zip(a, b):
                if x in ("True", "False"):
                    assert x == y
                else:
                    assert float(x) == pytest.approx(float(y), rel=1e-9)

    def test_one_vs_many_workers_identical(self):
        one = self._run(["--mode", "process", "--workers", "1"])
        many = self._run(["--mode", "process", "--workers", "4"])
        assert one == many


class TestOutOfCore:
    """--out-dir streams shards; summary output; incremental crossover."""

    def test_out_dir_writes_shards_and_prints_summary(self, capsys, tmp_path):
        out = tmp_path / "shards"
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:100:log",
             "--out-dir", str(out), "--shard-size", "32"]
        ) == 0
        text = capsys.readouterr().out
        assert "Out-of-core sweep (sharded)" in text
        assert (out / "manifest.json").exists()
        assert len(list(out.glob("shard-*.npz"))) == 4  # ceil(100/32)

    def test_out_dir_matches_in_memory_table(self, capsys, tmp_path):
        import numpy as np

        from repro.sweep import open_shards

        assert main(BASE_ARGS + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        out = tmp_path / "shards"
        assert main(BASE_ARGS + ["--out-dir", str(out)]) == 0
        sharded = open_shards(out)
        np.testing.assert_allclose(
            sharded.column("speedup"), payload["columns"]["speedup"], rtol=1e-12
        )

    def test_out_dir_json_summary(self, capsys, tmp_path):
        out = tmp_path / "shards"
        assert main(
            BASE_ARGS + ["--out-dir", str(out), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_rows"] == 3
        assert payload["manifest"].endswith("manifest.json")

    def test_out_dir_crossover_scans_shards(self, capsys, tmp_path):
        out = tmp_path / "shards"
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:60:log",
             "--out-dir", str(out), "--shard-size", "16",
             "--crossover-x", "bandwidth_gbps"]
        ) == 0
        assert "speedup=1 crossovers along bandwidth_gbps" in capsys.readouterr().out

    def test_out_dir_csv_rejected_before_sweeping(self, tmp_path):
        out = tmp_path / "s"
        with pytest.raises(Exception, match="csv"):
            main(BASE_ARGS + ["--out-dir", str(out), "--format", "csv"])
        # The guard fires before any work: no shards were written.
        assert not out.exists()

    def test_shard_size_without_out_dir_rejected(self):
        with pytest.raises(Exception, match="--out-dir"):
            main(BASE_ARGS + ["--shard-size", "16"])

    def test_process_mode_out_dir(self, capsys, tmp_path):
        from repro.sweep import open_shards

        out = tmp_path / "shards"
        assert main(
            BASE_ARGS + ["--mode", "process", "--out-dir", str(out)]
        ) == 0
        assert open_shards(out).n_rows == 3

    def test_process_mode_out_dir_honours_metrics(self, capsys, tmp_path):
        """--metrics narrows the shard columns in process mode too
        (regression: it used to be silently ignored with --out-dir)."""
        from repro.sweep import open_shards

        out = tmp_path / "shards"
        assert main(
            BASE_ARGS + ["--mode", "process", "--out-dir", str(out),
                         "--metrics", "t_pct,speedup"]
        ) == 0
        assert open_shards(out).metric_names == ("t_pct", "speedup")


class TestCacheFlags:
    def test_cache_dir_populates_cache(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        args = BASE_ARGS + ["--mode", "process", "--cache-dir", str(cache_dir)]
        assert main(args) == 0
        assert len(list(cache_dir.glob("*.json"))) == 3
        assert main(args) == 0  # second run hits the cache

    def test_cache_max_entries_bounds_directory(self, capsys, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(
            BASE_ARGS + ["--mode", "process", "--cache-dir", str(cache_dir),
                         "--cache-max-entries", "2"]
        ) == 0
        assert len(list(cache_dir.glob("*.json"))) == 2

    def test_cache_flags_rejected_in_vectorized_mode(self, tmp_path):
        with pytest.raises(Exception, match="--mode process"):
            main(BASE_ARGS + ["--cache-dir", str(tmp_path / "c")])

    def test_hybrid_backend_matches_process(self, capsys):
        assert main(BASE_ARGS + ["--mode", "process", "--format", "csv"]) == 0
        process_out = capsys.readouterr().out
        assert main(
            BASE_ARGS + ["--mode", "process", "--backend", "hybrid",
                         "--workers", "2", "--format", "csv"]
        ) == 0
        assert capsys.readouterr().out == process_out


class TestSimnetTable2:
    def test_simnet_grid_from_cli(self, capsys):
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2",
             "--workers", "2", "--format", "csv"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("concurrency,parallel_flows,")
        assert len(lines) == 1 + 24  # Table-2: 8 concurrency x 3 P values

    def test_simnet_grid_shards(self, capsys, tmp_path):
        from repro.sweep import open_shards

        out = tmp_path / "shards"
        assert main(
            ["sweep", "--simnet-table2", "--duration", "1",
             "--out-dir", str(out), "--shard-size", "10"]
        ) == 0
        assert open_shards(out).n_rows == 24

    def test_simnet_with_axes_rejected(self):
        with pytest.raises(Exception, match="simnet-table2"):
            main(BASE_ARGS + ["--simnet-table2"])

    def test_simnet_with_cache_flags_rejected(self, tmp_path):
        with pytest.raises(Exception, match="do not apply"):
            main(["sweep", "--simnet-table2", "--cache-dir", str(tmp_path / "c")])

    def test_simnet_with_hybrid_backend_rejected(self):
        with pytest.raises(Exception, match="--backend"):
            main(["sweep", "--simnet-table2", "--backend", "hybrid"])

    def test_simnet_with_metrics_rejected(self):
        with pytest.raises(Exception, match="--metrics"):
            main(["sweep", "--simnet-table2", "--metrics", "speedup"])

    def test_simnet_with_crossover_rejected_before_simulating(self):
        """The guard fires before the (slow) grid runs — the simnet
        table has no speedup column for the crossover summary."""
        with pytest.raises(Exception, match="crossover-x"):
            main(["sweep", "--simnet-table2", "--crossover-x", "concurrency"])

    def test_seeds_without_simnet_rejected(self):
        with pytest.raises(Exception, match="--simnet-table2 only"):
            main(BASE_ARGS + ["--seeds", "1", "2"])

    def test_batch_size_without_simnet_rejected(self):
        with pytest.raises(Exception, match="--simnet-table2 only"):
            main(BASE_ARGS + ["--batch-size", "4"])

    def test_batch_size_identical_grid(self, capsys):
        """Chunking the batch must not change a single table cell."""
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2", "--format", "csv"]
        ) == 0
        whole = capsys.readouterr().out
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2",
             "--batch-size", "5", "--format", "csv"]
        ) == 0
        assert capsys.readouterr().out == whole

    def test_sharded_grid_matches_in_memory(self, capsys, tmp_path):
        """The --out-dir path (block-batched via table2_block_metrics)
        produces the same cells as the in-memory table."""
        import numpy as np

        from repro.sweep import open_shards

        assert main(
            ["sweep", "--simnet-table2", "--duration", "2", "--format", "json"]
        ) == 0
        mem = json.loads(capsys.readouterr().out)["columns"]
        out = tmp_path / "shards"
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2",
             "--out-dir", str(out), "--shard-size", "7", "--batch-size", "4"]
        ) == 0
        table = open_shards(out)
        for name in ("t_worst_s", "achieved_utilization", "completed_clients"):
            np.testing.assert_allclose(
                np.asarray(table.column(name)), mem[name], rtol=0, atol=0
            )

    def test_hybrid_backend_rejected_in_vectorized_mode(self):
        with pytest.raises(Exception, match="--backend"):
            main(BASE_ARGS + ["--backend", "hybrid"])

    def test_degenerate_axis_range_rejected(self):
        """x=a:b:1 with a != b would silently keep only a (regression)."""
        with pytest.raises(Exception, match="silently discard"):
            main(["sweep", "--axis", "bandwidth_gbps=5:100:1"])


class TestCrossFacility:
    XF_ARGS = ["sweep", "--simnet-table2", "--cross-facility",
               "--duration", "1", "--seeds", "0"]

    def test_cross_facility_grid_from_cli(self, capsys):
        assert main(self.XF_ARGS + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("concurrency,parallel_flows,")
        assert len(lines) == 1 + 24

    def test_offered_utilization_normalises_to_wan_bottleneck(self, capsys):
        """The shared WAN is 25 Gbps — same as the single FABRIC link —
        so the offered-load axis matches the classic grid's exactly."""
        assert main(self.XF_ARGS + ["--format", "json"]) == 0
        routed = json.loads(capsys.readouterr().out)["columns"]
        assert main(
            ["sweep", "--simnet-table2", "--duration", "1", "--seeds", "0",
             "--format", "json"]
        ) == 0
        classic = json.loads(capsys.readouterr().out)["columns"]
        assert routed["offered_utilization"] == classic["offered_utilization"]

    def test_all_three_modes_identical(self, capsys, tmp_path):
        """In-memory, --workers N and --out-dir sharded runs of the
        faulted cross-facility grid carry the same columns with the
        same per-cell numbers."""
        import numpy as np

        from repro.sweep import open_shards

        fault = ["--outage", "0.3", "--fault-link", "dtn-wan"]
        assert main(self.XF_ARGS + fault + ["--format", "json"]) == 0
        mem = json.loads(capsys.readouterr().out)["columns"]
        assert main(
            self.XF_ARGS + fault + ["--format", "json", "--workers", "2"]
        ) == 0
        par = json.loads(capsys.readouterr().out)["columns"]
        assert par == mem
        out = tmp_path / "shards"
        assert main(
            self.XF_ARGS + fault + ["--out-dir", str(out), "--shard-size", "7"]
        ) == 0
        capsys.readouterr()
        table = open_shards(out)
        assert set(table.column_names) == set(mem)
        for name in mem:
            np.testing.assert_array_equal(
                np.asarray(table.column(name)), mem[name], err_msg=name
            )

    def test_fault_link_requires_cross_facility(self):
        with pytest.raises(Exception, match="--cross-facility"):
            main(["sweep", "--simnet-table2", "--fault-link", "dtn-wan"])

    def test_cross_facility_requires_simnet(self):
        with pytest.raises(Exception, match="closed-form model"):
            main(BASE_ARGS + ["--cross-facility"])

    def test_unknown_fault_link_rejected_before_simulating(self):
        with pytest.raises(Exception, match="unknown segment"):
            main(["sweep", "--simnet-table2", "--cross-facility",
                  "--fault-link", "bogus"])


class TestSimnetCcAxis:
    CC_ARGS = ["sweep", "--simnet-table2", "--duration", "2",
               "--seeds", "0", "--cc", "reno", "dctcp"]

    def test_cc_flag_prepends_integer_axis(self, capsys):
        assert main(self.CC_ARGS + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("cc,concurrency,parallel_flows,")
        assert len(lines) == 1 + 48  # one Table-2 grid per CC
        codes = [line.split(",", 1)[0] for line in lines[1:]]
        assert codes == ["0"] * 24 + ["1"] * 24  # cc is the slowest axis

    def test_cc_axis_spelling_matches_cc_flag(self, capsys):
        """--axis cc=reno,dctcp is the same sweep as --cc reno dctcp."""
        assert main(self.CC_ARGS + ["--format", "csv"]) == 0
        via_flag = capsys.readouterr().out
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2", "--seeds", "0",
             "--axis", "cc=reno,dctcp", "--format", "csv"]
        ) == 0
        assert capsys.readouterr().out == via_flag

    def test_cc_columns_identical_across_modes(self, capsys, tmp_path):
        """The acceptance bar: cc sweep columns are identical between
        the in-memory table, the multi-worker run and the --out-dir
        sharded path (where cc lands as a native integer column)."""
        import numpy as np

        from repro.sweep import open_shards

        assert main(self.CC_ARGS + ["--format", "json"]) == 0
        mem = json.loads(capsys.readouterr().out)["columns"]
        assert main(self.CC_ARGS + ["--workers", "2", "--format", "json"]) == 0
        workers = json.loads(capsys.readouterr().out)["columns"]
        assert workers == mem
        out = tmp_path / "shards"
        assert main(
            self.CC_ARGS
            + ["--out-dir", str(out), "--shard-size", "10", "--batch-size", "6"]
        ) == 0
        table = open_shards(out)
        cc_col = np.asarray(table.column("cc"))
        assert np.issubdtype(cc_col.dtype, np.integer)
        np.testing.assert_array_equal(cc_col, mem["cc"])
        for name in ("concurrency", "parallel_flows", "t_worst_s",
                     "achieved_utilization", "completed_clients"):
            np.testing.assert_allclose(
                np.asarray(table.column(name)), mem[name], rtol=0, atol=0
            )

    def test_reno_only_cc_matches_plain_grid_cells(self, capsys):
        """--cc reno is the pre-zoo grid plus a constant cc column."""
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2", "--seeds", "0",
             "--format", "csv"]
        ) == 0
        plain = capsys.readouterr().out.strip().splitlines()
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2", "--seeds", "0",
             "--cc", "reno", "--format", "csv"]
        ) == 0
        tagged = capsys.readouterr().out.strip().splitlines()
        assert tagged[0] == "cc," + plain[0]
        assert [l.split(",", 1)[1] for l in tagged[1:]] == plain[1:]

    def test_unknown_cc_name_rejected_with_valid_kinds(self):
        with pytest.raises(Exception, match="reno, dctcp, delay"):
            main(["sweep", "--simnet-table2", "--cc", "cubic"])

    def test_unknown_cc_axis_value_rejected_with_valid_kinds(self):
        with pytest.raises(Exception, match="reno, dctcp, delay"):
            main(["sweep", "--simnet-table2", "--axis", "cc=reno,bogus"])

    def test_non_cc_axis_still_rejected(self):
        with pytest.raises(Exception, match="simnet-table2"):
            main(["sweep", "--simnet-table2", "--axis", "concurrency=1,2"])

    def test_cc_without_simnet_rejected(self):
        with pytest.raises(Exception, match="--simnet-table2"):
            main(BASE_ARGS + ["--cc", "dctcp"])

    def test_sss_unknown_cc_rejected(self):
        with pytest.raises(Exception, match="reno, dctcp, delay"):
            main(["sss", "--duration", "1", "--seeds", "0", "--cc", "westwood"])


class TestSimnetFaultAxes:
    FAULT_ARGS = ["sweep", "--simnet-table2", "--duration", "2",
                  "--seeds", "0", "--outage", "5"]

    def test_outage_prepends_fault_axes_with_baseline_first(self, capsys):
        assert main(self.FAULT_ARGS + ["--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("outage_s,degrade_frac,fault_start_s,")
        for col in ("stall_time_s", "retries", "aborted"):
            assert col in lines[0].split(",")
        # Baseline scenario then the faulted one, each a full grid.
        assert len(lines) == 1 + 48
        outages = [line.split(",", 1)[0] for line in lines[1:]]
        assert outages == ["0.0"] * 24 + ["5.0"] * 24

    def test_fault_columns_identical_across_modes(self, capsys, tmp_path):
        """Acceptance bar: --outage 5 produces identical columns from
        the in-memory table, the multi-worker run and --out-dir
        shards."""
        import numpy as np

        from repro.sweep import open_shards

        assert main(self.FAULT_ARGS + ["--format", "json"]) == 0
        mem = json.loads(capsys.readouterr().out)["columns"]
        assert main(
            self.FAULT_ARGS + ["--workers", "2", "--format", "json"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["columns"] == mem
        out = tmp_path / "shards"
        assert main(
            self.FAULT_ARGS
            + ["--out-dir", str(out), "--shard-size", "10", "--batch-size", "6"]
        ) == 0
        table = open_shards(out)
        for name in ("outage_s", "degrade_frac", "fault_start_s", "t_worst_s",
                     "completed_clients", "stall_time_s", "retries", "aborted"):
            np.testing.assert_allclose(
                np.asarray(table.column(name)), mem[name], rtol=0, atol=0
            )

    def test_fault_free_scenario_matches_plain_grid(self, capsys):
        """The baseline rows of a faulted sweep are the plain grid —
        faults with outage_s == 0 are an exact no-op."""
        assert main(
            ["sweep", "--simnet-table2", "--duration", "2", "--seeds", "0",
             "--format", "csv"]
        ) == 0
        plain = capsys.readouterr().out.strip().splitlines()
        assert main(self.FAULT_ARGS + ["--format", "csv"]) == 0
        faulted = capsys.readouterr().out.strip().splitlines()
        n_plain_cols = len(plain[0].split(","))
        baseline = [
            ",".join(l.split(",")[3:3 + n_plain_cols]) for l in faulted[1:25]
        ]
        plain_cells = [
            ",".join(l.split(",")[:n_plain_cols]) for l in plain[1:]
        ]
        assert baseline == plain_cells

    def test_outage_composes_with_cc_axis(self, capsys):
        assert main(
            self.FAULT_ARGS + ["--cc", "reno", "dctcp", "--format", "csv"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("outage_s,degrade_frac,fault_start_s,cc,")
        assert len(lines) == 1 + 96  # 2 scenarios x 2 ccs x 24 cells

    def test_degrade_without_outage_rejected(self):
        with pytest.raises(Exception, match="add --outage"):
            main(["sweep", "--simnet-table2", "--degrade", "0.5"])

    def test_fault_start_without_outage_rejected(self):
        with pytest.raises(Exception, match="add --outage"):
            main(["sweep", "--simnet-table2", "--fault-start", "1"])

    def test_negative_outage_rejected(self):
        with pytest.raises(Exception, match="--outage must be >= 0"):
            main(["sweep", "--simnet-table2", "--outage", "-1"])

    def test_degrade_out_of_range_rejected(self):
        with pytest.raises(Exception, match=r"\[0, 1\]"):
            main(["sweep", "--simnet-table2", "--outage", "5",
                  "--degrade", "1.5"])

    def test_fault_start_past_duration_rejected(self):
        with pytest.raises(Exception, match="past the experiment"):
            main(["sweep", "--simnet-table2", "--duration", "2",
                  "--outage", "5", "--fault-start", "3"])

    def test_fault_flags_on_model_sweep_rejected(self):
        with pytest.raises(Exception, match="no link to fail"):
            main(BASE_ARGS + ["--outage", "5"])

    def test_sss_outage_runs_and_changes_numbers(self, capsys):
        sss_args = ["sss", "--duration", "1", "--seeds", "0"]
        assert main(sss_args) == 0
        base = capsys.readouterr().out
        assert main(sss_args + ["--outage", "3", "--fault-start", "0.2"]) == 0
        faulted = capsys.readouterr().out
        assert faulted != base

    def test_sss_fault_start_past_duration_rejected(self):
        with pytest.raises(Exception, match="past the experiment"):
            main(["sss", "--duration", "1", "--seeds", "0",
                  "--outage", "2", "--fault-start", "5"])


class TestPresets:
    def test_lcls_preset_changes_numbers(self, capsys):
        assert main(BASE_ARGS + ["--format", "json"]) == 0
        aps = json.loads(capsys.readouterr().out)
        assert main(BASE_ARGS + ["--preset", "lcls", "--format", "json"]) == 0
        lcls = json.loads(capsys.readouterr().out)
        assert aps["columns"]["t_local"] != lcls["columns"]["t_local"]

    def test_set_override_applies(self, capsys):
        assert main(BASE_ARGS + ["--set", "theta=1", "--format", "json"]) == 0
        streaming = json.loads(capsys.readouterr().out)
        assert all(v == 0.0 for v in streaming["columns"]["t_io"])


class TestDecisionMetrics:
    """decision/tier/gain/kappa columns flow through every mode."""

    DEC_ARGS = ["sweep", "--axis", "bandwidth_gbps=1:400:12:log",
                "--metrics", "decision,tier,gain,kappa"]

    def _csv(self, extra):
        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            assert main(self.DEC_ARGS + ["--format", "csv"] + extra) == 0
        return buf.getvalue()

    def test_vectorized_columns(self):
        lines = self._csv([]).strip().splitlines()
        assert lines[0] == "bandwidth_gbps,decision,tier,gain,kappa"
        codes = {line.split(",")[1] for line in lines[1:]}
        assert codes <= {"0", "1", "2"}
        assert len(codes) > 1  # the decision flips across the range

    def test_process_mode_bit_identical_to_vectorized(self):
        assert self._csv(["--mode", "process", "--workers", "2"]) == self._csv([])

    def test_hybrid_backend_bit_identical_to_vectorized(self):
        assert self._csv(
            ["--mode", "process", "--backend", "hybrid", "--workers", "2"]
        ) == self._csv([])

    def test_sharded_mode_bit_identical_to_vectorized(self, capsys, tmp_path):
        import numpy as np

        from repro.sweep import open_shards

        out = tmp_path / "shards"
        assert main(self.DEC_ARGS + ["--out-dir", str(out), "--shard-size", "5"]) == 0
        capsys.readouterr()
        sharded = open_shards(out)
        rows = [line.split(",") for line in self._csv([]).strip().splitlines()[1:]]
        np.testing.assert_array_equal(
            sharded.column("decision"), [int(r[1]) for r in rows]
        )
        np.testing.assert_array_equal(
            sharded.column("tier"), [int(r[2]) for r in rows]
        )

    def test_break_even_metrics_accepted(self, capsys):
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=5,25",
             "--metrics", "break_even_theta,asymptotic_gain", "--format", "csv"]
        ) == 0
        header = capsys.readouterr().out.splitlines()[0]
        assert header == "bandwidth_gbps,break_even_theta,asymptotic_gain"


class TestCompressFlag:
    def test_compress_writes_compressed_shards(self, capsys, tmp_path):
        out = tmp_path / "shards"
        assert main(
            BASE_ARGS + ["--out-dir", str(out), "--compress"]
        ) == 0
        assert "compressed | yes" in capsys.readouterr().out.replace("  ", " ")
        import json as _json

        assert _json.loads((out / "manifest.json").read_text())["compress"] is True

    def test_compress_without_out_dir_rejected(self):
        with pytest.raises(Exception, match="--out-dir"):
            main(BASE_ARGS + ["--compress"])


class TestSimnetStreaming:
    def test_simnet_out_dir_streams_blocks(self, capsys, tmp_path):
        """--simnet-table2 --out-dir streams the grid block-by-block via
        run_sweep(out=) and matches the in-memory table's numbers."""
        import json as _json

        from repro.sweep import open_shards

        out = tmp_path / "shards"
        assert main(
            ["sweep", "--simnet-table2", "--duration", "1",
             "--out-dir", str(out), "--shard-size", "10"]
        ) == 0
        capsys.readouterr()
        sharded = open_shards(out)
        assert sharded.n_rows == 24
        assert sharded.n_shards == 3  # ceil(24/10): blocks streamed, not one dump
        assert main(
            ["sweep", "--simnet-table2", "--duration", "1", "--format", "json"]
        ) == 0
        payload = _json.loads(capsys.readouterr().out)
        for metric in ("offered_utilization", "t_worst_s", "completed_clients"):
            got = [float(v) for v in sharded.column(metric)]
            ref = {}
            for c, p, v in zip(
                payload["columns"]["concurrency"],
                payload["columns"]["parallel_flows"],
                payload["columns"][metric],
            ):
                ref[(float(c), float(p))] = float(v)
            keys = [
                (float(c), float(p))
                for c, p in zip(
                    sharded.column("concurrency"), sharded.column("parallel_flows")
                )
            ]
            assert got == [ref[k] for k in keys], metric


def _write_curve(tmp_path):
    """A pinned congestion curve saved as the --sss-curve artifact."""
    from repro.core.sss import SSSMeasurement
    from repro.measurement.congestion import SssCurve

    points = [(0.16, 0.3), (0.48, 0.6), (0.8, 1.2), (0.96, 6.0), (1.28, 8.0)]
    curve = SssCurve(
        size_gb=0.5,
        bandwidth_gbps=25.0,
        measurements=[SSSMeasurement(0.5, 25.0, t, u) for u, t in points],
    )
    return curve.save(tmp_path / "curve.json")


class TestSssCurveJoin:
    """--sss-curve: the measured congestion curve joined onto the grid."""

    def _args(self, path, extra=()):
        return [
            "sweep", "--sss-curve", str(path),
            "--axis", "utilization=0.2:1.2:6",
            "--axis", "bandwidth_gbps=1:400:8:log",
            "--metrics", "decision,tier,sss",
            "--format", "csv", *extra,
        ]

    def _csv(self, args):
        import io
        from contextlib import redirect_stdout

        buf = io.StringIO()
        with redirect_stdout(buf):
            assert main(args) == 0
        return buf.getvalue()

    def test_sss_column_and_flips(self, tmp_path):
        path = _write_curve(tmp_path)
        lines = self._csv(self._args(path)).strip().splitlines()
        assert lines[0] == "utilization,bandwidth_gbps,decision,tier,sss"
        sss = [float(line.split(",")[4]) for line in lines[1:]]
        assert min(sss) >= 1.0 and max(sss) > 10.0
        # Severe congestion pins the high-utilization rows to local.
        last_row_decisions = {
            line.split(",")[2] for line in lines[1:] if line.startswith("1.2,")
        }
        assert last_row_decisions == {"0"}

    def test_process_and_hybrid_modes_bit_identical(self, tmp_path):
        path = _write_curve(tmp_path)
        ref = self._csv(self._args(path))
        assert self._csv(
            self._args(path, ("--mode", "process", "--workers", "2"))
        ) == ref
        assert self._csv(
            self._args(
                path,
                ("--mode", "process", "--backend", "hybrid", "--workers", "2"),
            )
        ) == ref

    def test_sharded_mode_bit_identical(self, tmp_path, capsys):
        import numpy as np

        from repro.sweep import open_shards

        path = _write_curve(tmp_path)
        out = tmp_path / "shards"
        assert main(
            [a for a in self._args(path) if a not in ("--format", "csv")]
            + ["--out-dir", str(out), "--shard-size", "7"]
        ) == 0
        capsys.readouterr()
        sharded = open_shards(out)
        rows = [
            line.split(",")
            for line in self._csv(self._args(path)).strip().splitlines()[1:]
        ]
        np.testing.assert_array_equal(
            sharded.column("decision"), [int(r[2]) for r in rows]
        )
        np.testing.assert_array_equal(
            sharded.column("sss"), [float(r[4]) for r in rows]
        )

    def test_missing_curve_file_names_the_fix(self, tmp_path):
        with pytest.raises(Exception, match="repro sss --out"):
            main(self._args(tmp_path / "missing.json"))

    def test_corrupt_curve_file_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.raises(Exception, match="not valid JSON"):
            main(self._args(bad))

    def test_curve_without_utilization_axis_rejected(self, tmp_path):
        path = _write_curve(tmp_path)
        with pytest.raises(Exception, match="utilization"):
            main(["sweep", "--sss-curve", str(path),
                  "--axis", "bandwidth_gbps=5,25"])

    def test_sss_metric_without_curve_rejected(self):
        with pytest.raises(Exception, match="--sss-curve"):
            main(["sweep", "--axis", "utilization=0.2,0.8",
                  "--metrics", "sss"])

    def test_sss_curve_with_simnet_rejected(self, tmp_path):
        path = _write_curve(tmp_path)
        with pytest.raises(Exception, match="sss-curve"):
            main(["sweep", "--simnet-table2", "--sss-curve", str(path)])


class TestDecisionMapRendering:
    """--decision-map: the 2-D text strategy map."""

    def test_map_from_in_memory_table(self, capsys, tmp_path):
        path = _write_curve(tmp_path)
        assert main(
            ["sweep", "--sss-curve", str(path),
             "--axis", "utilization=0.2:1.2:6",
             "--axis", "bandwidth_gbps=1:400:8:log",
             "--metrics", "decision",
             "--decision-map", "bandwidth_gbps,utilization"]
        ) == 0
        out = capsys.readouterr().out
        assert "Decision map: winning strategy over" in out
        assert "legend: L=local" in out
        assert "shares:" in out

    def test_map_from_shard_directory(self, capsys, tmp_path):
        path = _write_curve(tmp_path)
        assert main(
            ["sweep", "--sss-curve", str(path),
             "--axis", "utilization=0.2:1.2:6",
             "--axis", "bandwidth_gbps=1:400:8:log",
             "--out-dir", str(tmp_path / "shards"), "--shard-size", "5",
             "--decision-map", "bandwidth_gbps,utilization"]
        ) == 0
        out = capsys.readouterr().out
        assert "Out-of-core sweep (sharded)" in out
        assert "Decision map: winning strategy over" in out

    def test_map_adds_decision_metric_automatically(self, capsys):
        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:6:log",
             "--axis", "s_unit_gb=0.5:50:4:log",
             "--metrics", "t_pct",
             "--decision-map", "bandwidth_gbps,s_unit_gb"]
        ) == 0
        assert "Decision map" in capsys.readouterr().out

    def test_map_goes_to_stderr_for_json(self, capsys):
        import json as json_mod

        assert main(
            ["sweep", "--axis", "bandwidth_gbps=1:400:6:log",
             "--axis", "s_unit_gb=0.5:50:4:log",
             "--format", "json",
             "--decision-map", "bandwidth_gbps,s_unit_gb"]
        ) == 0
        captured = capsys.readouterr()
        json_mod.loads(captured.out)  # stdout stays machine-readable
        assert "Decision map" in captured.err

    def test_malformed_map_argument_rejected(self):
        with pytest.raises(Exception, match="comma-separated"):
            main(["sweep", "--axis", "bandwidth_gbps=5,25",
                  "--decision-map", "bandwidth_gbps"])
        with pytest.raises(Exception, match="must differ"):
            main(["sweep", "--axis", "bandwidth_gbps=5,25",
                  "--decision-map", "bandwidth_gbps,bandwidth_gbps"])

    def test_unknown_map_axis_rejected(self):
        with pytest.raises(Exception, match="not swept"):
            main(["sweep", "--axis", "bandwidth_gbps=5,25",
                  "--decision-map", "bandwidth_gbps,warp_factor"])

    def test_non_grid_spec_rejected(self):
        """Zipped axes do not form a full cartesian grid; the map must
        refuse with an actionable message rather than render nonsense."""
        with pytest.raises(Exception, match="full .* grid|exactly once"):
            main(["sweep",
                  "--zip", "bandwidth_gbps=5,25,100",
                  "--zip", "s_unit_gb=0.5,5,50",
                  "--decision-map", "bandwidth_gbps,s_unit_gb"])

    def test_third_axis_breaks_grid_with_actionable_error(self):
        with pytest.raises(Exception, match="full .* grid|exactly once"):
            main(["sweep",
                  "--axis", "bandwidth_gbps=5,25",
                  "--axis", "s_unit_gb=0.5,5",
                  "--axis", "theta=1,2",
                  "--decision-map", "bandwidth_gbps,s_unit_gb"])

    def test_map_with_simnet_rejected(self):
        with pytest.raises(Exception, match="decision-map"):
            main(["sweep", "--simnet-table2", "--decision-map", "a,b"])
