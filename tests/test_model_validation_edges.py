"""Regression tests: invalid rates reach the model as clean errors.

Zero or negative bandwidth/TFLOPS handed to ``t_transfer``/``t_local``
(directly or through ``speedup``/``t_pct``) must raise a
:class:`ValidationError` naming the offending argument — never emit
numpy inf/divide warnings or return silent infs.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import model
from repro.errors import ValidationError


@pytest.fixture(autouse=True)
def warnings_are_errors():
    """Any numpy RuntimeWarning escaping the model is a failure."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


class TestScalarInputs:
    @pytest.mark.parametrize("bad", [0.0, -25.0])
    def test_t_transfer_bad_bandwidth(self, bad):
        with pytest.raises(ValidationError, match="bandwidth_gbps"):
            model.t_transfer(1.0, bad)

    @pytest.mark.parametrize("bad", [0.0, -10.0])
    def test_t_local_bad_rate(self, bad):
        with pytest.raises(ValidationError, match="r_local_tflops"):
            model.t_local(1.0, 1e12, bad)

    def test_t_remote_bad_local_rate_names_input_value(self):
        """The error must name the value the caller passed, not the
        r * R_local product (regression: -10 used to surface as -20)."""
        with pytest.raises(ValidationError, match=r"r_local_tflops.*-10"):
            model.t_remote(1.0, 1e12, -10.0, 2.0)

    def test_t_remote_double_negative_rejected(self):
        """Negative rate times negative ratio must not slip through as a
        positive product."""
        with pytest.raises(ValidationError):
            model.t_remote(1.0, 1e12, -10.0, -2.0)

    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_speedup_bad_bandwidth(self, bad):
        with pytest.raises(ValidationError, match="bandwidth_gbps"):
            model.speedup(1.0, 1e12, 10.0, bad)

    def test_t_pct_zero_local_rate(self):
        with pytest.raises(ValidationError, match="r_local_tflops"):
            model.t_pct(1.0, 1e12, 0.0, 25.0)

    def test_non_finite_bandwidth(self):
        with pytest.raises(ValidationError, match="bandwidth_gbps"):
            model.t_transfer(1.0, float("nan"))


class TestArrayInputs:
    def test_array_with_one_zero_bandwidth(self):
        with pytest.raises(ValidationError, match="bandwidth_gbps"):
            model.t_transfer(1.0, np.array([25.0, 0.0, 100.0]))

    def test_array_with_negative_rate(self):
        with pytest.raises(ValidationError, match="r_local_tflops"):
            model.t_local(1.0, 1e12, np.array([10.0, -1.0]))

    def test_valid_arrays_emit_no_warnings(self):
        out = model.speedup(
            np.array([1.0, 10.0]), 1e12, 10.0, np.array([5.0, 500.0]), r=10.0
        )
        assert np.all(np.isfinite(out))

    def test_zero_complexity_is_legal_not_warning(self):
        """C = 0 models pure data movement: T_local = 0, speedup = 0,
        and no divide warning anywhere."""
        assert model.t_local(1.0, 0.0, 10.0) == 0.0
        assert model.speedup(1.0, 0.0, 10.0, 25.0, r=10.0) == 0.0
        assert not model.remote_is_faster(1.0, 0.0, 10.0, 25.0, r=10.0)
