"""Sensitivity analysis: sweeps, elasticities, tornado rows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import model, sensitivity
from repro.errors import ValidationError


class TestSweep:
    def test_matches_pointwise_evaluation(self, params):
        values = np.array([5.0, 25.0, 100.0])
        out = sensitivity.sweep(params, "bandwidth_gbps", values)
        for v, t in zip(values, out):
            expected = model.t_pct(
                params.s_unit_gb,
                params.complexity_flop_per_gb,
                params.r_local_tflops,
                v,
                alpha=params.alpha,
                r=params.r,
                theta=params.theta,
            )
            assert t == pytest.approx(expected)

    def test_r_remote_sweep_recomputes_ratio(self, params):
        values = np.array([params.r_local_tflops, 10 * params.r_local_tflops])
        out = sensitivity.sweep(params, "r_remote_tflops", values)
        assert out[1] < out[0]

    def test_r_local_sweep_leaves_tpct_invariant(self, params):
        # T_pct depends on r * R_local = R_remote only, so sweeping
        # R_local with R_remote fixed must not change T_pct at all
        # (it changes T_local, i.e. the gain, not the remote time).
        values = np.array([params.r_local_tflops, params.r_local_tflops * 4])
        out = sensitivity.sweep(params, "r_local_tflops", values)
        assert out[1] == pytest.approx(out[0])

    def test_unknown_parameter(self, params):
        with pytest.raises(ValidationError):
            sensitivity.sweep(params, "nonsense", [1.0])

    def test_empty_values(self, params):
        with pytest.raises(ValidationError):
            sensitivity.sweep(params, "alpha", [])


class TestElasticity:
    def test_size_elasticity_is_one(self, params):
        assert sensitivity.elasticity(params, "s_unit_gb") == pytest.approx(
            1.0, abs=1e-6
        )

    def test_bandwidth_elasticity_is_negative_transfer_share(self, params):
        times = model.evaluate(params)
        w_t = params.theta * times.t_transfer / times.t_pct
        assert sensitivity.elasticity(params, "bandwidth_gbps") == pytest.approx(
            -w_t, abs=1e-4
        )

    def test_theta_elasticity_is_transfer_share(self, params):
        times = model.evaluate(params)
        w_t = params.theta * times.t_transfer / times.t_pct
        assert sensitivity.elasticity(params, "theta") == pytest.approx(
            w_t, abs=1e-4
        )

    def test_remote_rate_elasticity_is_negative_compute_share(self, params):
        times = model.evaluate(params)
        w_c = times.t_remote / times.t_pct
        assert sensitivity.elasticity(params, "r_remote_tflops") == pytest.approx(
            -w_c, abs=1e-4
        )

    def test_alpha_at_cap_uses_interior_step(self, params):
        p = params.replace(alpha=1.0)
        e = sensitivity.elasticity(p, "alpha")
        assert e < 0

    def test_invalid_step(self, params):
        with pytest.raises(ValidationError):
            sensitivity.elasticity(params, "alpha", rel_step=0.5)


class TestTornado:
    def test_rows_sorted_by_swing(self, params):
        rows = sensitivity.tornado(
            params,
            {
                "alpha": (0.2, 1.0),
                "theta": (1.0, 10.0),
                "r_remote_tflops": (20.0, 500.0),
            },
        )
        swings = [r.swing_s for r in rows]
        assert swings == sorted(swings, reverse=True)

    def test_swing_values(self, params):
        rows = sensitivity.tornado(params, {"theta": (1.0, 5.0)})
        row = rows[0]
        assert row.t_pct_at_high > row.t_pct_at_low
        assert row.swing_s == pytest.approx(
            row.t_pct_at_high - row.t_pct_at_low
        )

    def test_invalid_range(self, params):
        with pytest.raises(ValidationError):
            sensitivity.tornado(params, {"alpha": (0.9, 0.2)})

    def test_unknown_name(self, params):
        with pytest.raises(ValidationError):
            sensitivity.tornado(params, {"bogus": (1.0, 2.0)})
