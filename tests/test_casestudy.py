"""The Section-5 case study against a paper-shaped curve."""

from __future__ import annotations

import pytest

from repro.casestudy.lcls2 import run_case_study, tier_table
from repro.core.sss import SSSMeasurement
from repro.errors import MeasurementError
from repro.measurement.congestion import SssCurve


def paper_like_curve():
    points = [(0.16, 0.3), (0.64, 1.2), (0.96, 6.0), (1.28, 12.0)]
    return SssCurve(
        size_gb=0.5,
        bandwidth_gbps=25.0,
        measurements=[SSSMeasurement(0.5, 25.0, t, u) for u, t in points],
    )


@pytest.fixture(scope="module")
def report():
    return run_case_study(curve=paper_like_curve())


class TestCoherentFinding(object):
    def test_present_and_fits(self, report):
        f = report.finding("coherent")
        assert f.fits_link
        assert f.utilization == pytest.approx(0.64)

    def test_worst_case_matches_paper(self, report):
        # "we estimate the worst-case data streaming time to be 1.2 seconds"
        f = report.finding("coherent")
        assert f.worst_case_transfer_s == pytest.approx(1.2)

    def test_tier2_budget_matches_paper(self, report):
        # "well within the time constraints for Tier 2, while still
        #  leaving 8.8 seconds for the analysis"
        f = report.finding("coherent")
        assert f.tier2.feasible
        assert f.tier2_analysis_budget_s == pytest.approx(8.8)

    def test_tier1_not_feasible(self, report):
        f = report.finding("coherent")
        assert not f.tier1.feasible

    def test_local_preference_threshold(self, report):
        # "If the instrument facility has the capacity to perform the
        #  analysis locally within less than 1.2 seconds, then local
        #  processing is favored."
        f = report.finding("coherent")
        assert f.local_preferred_if_local_faster_than_s == pytest.approx(1.2)


class TestLiquidFinding:
    def test_unreduced_does_not_fit(self, report):
        f = report.finding("Liquid Scattering")
        assert not f.fits_link
        assert f.worst_case_transfer_s is None

    def test_reduced_finding(self, report):
        # "we assume that we could further reduce transfer rates to
        #  3 GB/s (24 Gbps). Based on a 96% utilization we estimate the
        #  worst-case data streaming time to be 6 seconds ... leaving
        #  only 4 seconds for the remote analysis."
        f = report.finding("reduced")
        assert f.fits_link
        assert f.utilization == pytest.approx(0.96)
        assert f.worst_case_transfer_s == pytest.approx(6.0)
        assert f.tier2_analysis_budget_s == pytest.approx(4.0)


class TestReportStructure:
    def test_three_findings(self, report):
        assert len(report.findings) == 3

    def test_missing_lookup_raises(self, report):
        with pytest.raises(MeasurementError):
            report.finding("nonexistent workflow")

    def test_tier_table(self):
        rows = tier_table()
        assert len(rows) == 3
        assert "1 s" in rows[0][1]
        assert "10 s" in rows[1][1]
        assert "60 s" in rows[2][1]

    def test_custom_reduction_rate(self):
        rep = run_case_study(
            curve=paper_like_curve(), reduced_liquid_rate_gbytes_per_s=2.5
        )
        f = rep.finding("reduced")
        assert f.workflow.throughput_gbytes_per_s == 2.5
