"""Gain function and break-even surfaces."""

from __future__ import annotations

import numpy as np
import pytest

import importlib

gain = importlib.import_module("repro.core.gain")

from repro.core.parameters import ModelParameters
from repro.errors import ValidationError


class TestKappa:
    def test_definition(self):
        # R_local=1 TFLOPS, C=1e12 FLOP/GB, Bw=8 Gbps=1 GB/s -> kappa=1.
        assert gain.kappa(1e12, 1.0, 8.0) == pytest.approx(1.0)

    def test_fat_pipe_shrinks_kappa(self):
        assert gain.kappa(1e12, 1.0, 80.0) == pytest.approx(0.1)

    def test_rejects_zero_complexity(self):
        with pytest.raises(ValidationError):
            gain.kappa(0.0, 1.0, 8.0)


class TestGain:
    def test_closed_form(self):
        # G = 1 / (theta*kappa/alpha + 1/r)
        g = gain.gain(alpha=0.5, r=4.0, theta=2.0, kappa_value=0.1)
        assert g == pytest.approx(1.0 / (2.0 * 0.1 / 0.5 + 0.25))

    def test_gain_from_params_matches_speedup(self):
        from repro.core.model import speedup

        p = ModelParameters(
            s_unit_gb=3.0,
            complexity_flop_per_gb=5e12,
            r_local_tflops=2.0,
            r_remote_tflops=20.0,
            bandwidth_gbps=40.0,
            alpha=0.7,
            theta=2.5,
        )
        assert gain.gain_from_params(p) == pytest.approx(
            speedup(
                p.s_unit_gb,
                p.complexity_flop_per_gb,
                p.r_local_tflops,
                p.bandwidth_gbps,
                alpha=p.alpha,
                r=p.r,
                theta=p.theta,
            )
        )

    def test_vectorised_over_r(self):
        out = gain.gain(0.5, np.array([1.0, 10.0]), 1.0, 0.1)
        assert out.shape == (2,)
        assert out[1] > out[0]


class TestBreakEven:
    def test_theta_star_infeasible_when_r_leq_one(self):
        assert gain.break_even_theta(0.9, 1.0, 0.1) == pytest.approx(0.0)
        assert gain.break_even_theta(0.9, 0.5, 0.1) < 0

    def test_alpha_star_exact(self):
        k, r, th = 0.05, 4.0, 2.0
        a_star = gain.break_even_alpha(th, r, k)
        if a_star <= 1.0:
            assert gain.gain(a_star, r, th, k) == pytest.approx(1.0)

    def test_alpha_star_rejects_r_leq_one(self):
        with pytest.raises(ValidationError):
            gain.break_even_alpha(1.0, 1.0, 0.1)

    def test_r_star_exact(self):
        a, th, k = 0.8, 1.5, 0.1
        r_star = gain.break_even_r(a, th, k)
        assert np.isfinite(r_star)
        assert gain.gain(a, float(r_star), th, k) == pytest.approx(1.0)

    def test_r_star_infinite_when_transfer_dominates(self):
        # theta*kappa/alpha >= 1: transfer alone exceeds local compute.
        assert gain.break_even_r(0.5, 2.0, 1.0) == np.inf

    def test_kappa_star_round_trip(self):
        a, r, th = 0.9, 8.0, 2.0
        k_star = gain.break_even_kappa(a, r, th)
        assert gain.gain(a, r, th, float(k_star)) == pytest.approx(1.0)

    def test_break_even_consistency_theta_vs_kappa(self):
        # theta*(kappa) and kappa*(theta) invert each other.
        a, r = 0.7, 3.0
        k = 0.08
        th_star = gain.break_even_theta(a, r, k)
        if th_star >= 1.0:
            assert gain.break_even_kappa(a, r, th_star) == pytest.approx(k)


class TestAsymptote:
    def test_gain_ceiling(self):
        a, th, k = 0.8, 2.0, 0.1
        ceiling = gain.asymptotic_gain(a, th, k)
        assert gain.gain(a, 1e9, th, k) == pytest.approx(ceiling, rel=1e-6)

    def test_ceiling_below_one_means_network_bound(self):
        # alpha/(theta*kappa) < 1: no remote horsepower can help.
        a, th, k = 0.5, 2.0, 1.0
        assert gain.asymptotic_gain(a, th, k) < 1.0
        assert gain.break_even_r(a, th, k) == np.inf
