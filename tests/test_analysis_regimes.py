"""Regime boundaries and utilisation budgets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sss import CongestionRegime, RegimeThresholds, SSSMeasurement
from repro.errors import MeasurementError
from repro.measurement.congestion import SssCurve
from repro.analysis.regimes import (
    regime_breakdown,
    utilization_budget,
)


def curve(points=((0.16, 0.3), (0.48, 0.9), (0.64, 1.5), (0.80, 2.5),
                  (0.96, 6.0), (1.28, 12.0))):
    return SssCurve(
        size_gb=0.5,
        bandwidth_gbps=25.0,
        measurements=[SSSMeasurement(0.5, 25.0, t, u) for u, t in points],
    )


class TestBreakdown:
    def test_classification(self):
        b = regime_breakdown(curve())
        assert b.regimes[0] is CongestionRegime.LOW
        assert b.regimes[3] is CongestionRegime.MODERATE
        assert b.regimes[-1] is CongestionRegime.SEVERE

    def test_boundaries_bracket_thresholds(self):
        b = regime_breakdown(curve())
        # 1 s crossing between 48 % and 64 %.
        assert 0.48 < b.low_to_moderate_utilization < 0.64
        # 3 s crossing between 80 % and 96 %.
        assert 0.80 < b.moderate_to_severe_utilization < 0.96

    def test_boundary_interpolation_exact(self):
        b = regime_breakdown(curve())
        u = b.low_to_moderate_utilization
        # The interpolated worst case at the boundary is the threshold.
        assert curve().t_worst_at(u) == pytest.approx(1.0, rel=1e-9)

    def test_no_severe_points(self):
        b = regime_breakdown(curve(points=((0.2, 0.3), (0.5, 0.6))))
        assert b.moderate_to_severe_utilization is None
        assert all(r is CongestionRegime.LOW for r in b.regimes)

    def test_points_in(self):
        b = regime_breakdown(curve())
        low = b.points_in(CongestionRegime.LOW)
        assert np.all(low <= 0.5)

    def test_custom_thresholds(self):
        th = RegimeThresholds(real_time_limit_s=0.5, severe_limit_s=10.0)
        b = regime_breakdown(curve(), thresholds=th)
        assert b.regimes[-1] is CongestionRegime.SEVERE
        assert b.regimes[-2] is CongestionRegime.MODERATE

    def test_empty_curve(self):
        with pytest.raises(MeasurementError):
            regime_breakdown(SssCurve(size_gb=0.5, bandwidth_gbps=25.0))


class TestBudget:
    def test_budget_for_one_second_deadline(self):
        u = utilization_budget(curve(), deadline_s=1.0)
        assert 0.48 < u < 0.64

    def test_larger_deadline_allows_more_load(self):
        u1 = utilization_budget(curve(), deadline_s=1.0)
        u10 = utilization_budget(curve(), deadline_s=10.0)
        assert u10 > u1

    def test_volume_scaling_tightens_budget(self):
        # A 2 GB unit takes 4x the 0.5 GB worst case.
        u_small = utilization_budget(curve(), deadline_s=1.0, volume_gb=0.5)
        u_big = utilization_budget(curve(), deadline_s=1.0, volume_gb=2.0)
        assert u_big is None or u_big < u_small

    def test_impossible_deadline(self):
        assert utilization_budget(curve(), deadline_s=0.1) is None

    def test_everything_feasible(self):
        u = utilization_budget(curve(), deadline_s=100.0)
        assert u == pytest.approx(1.28)

    def test_bad_deadline(self):
        with pytest.raises(MeasurementError):
            utilization_budget(curve(), deadline_s=0.0)


class TestBreakdownFromTables:
    """The array/sweep-table entry points mirror the curve-based one."""

    def test_table_matches_curve(self):
        from repro.analysis.regimes import regime_breakdown_from_table

        c = curve()
        a = regime_breakdown(c)
        b = regime_breakdown_from_table(c.utilizations, c.t_worst_values)
        assert a.regimes == b.regimes
        assert a.low_to_moderate_utilization == pytest.approx(
            b.low_to_moderate_utilization
        )
        assert a.moderate_to_severe_utilization == pytest.approx(
            b.moderate_to_severe_utilization
        )

    def test_mismatched_columns_rejected(self):
        from repro.analysis.regimes import regime_breakdown_from_table

        with pytest.raises(MeasurementError):
            regime_breakdown_from_table(np.array([0.1, 0.2]), np.array([1.0]))

    def test_empty_rejected(self):
        from repro.analysis.regimes import regime_breakdown_from_table

        with pytest.raises(MeasurementError):
            regime_breakdown_from_table(np.array([]), np.array([]))

    def test_from_sweep_result_sorts_by_x(self):
        from repro.analysis.regimes import regime_breakdown_from_sweep
        from repro.sweep import SweepResult

        # Rows deliberately out of order; breakdown must sort by load.
        table = SweepResult(
            {
                "offered_utilization": [0.96, 0.16, 0.64],
                "t_worst_s": [6.0, 0.3, 1.5],
            },
            axis_names=("offered_utilization",),
        )
        b = regime_breakdown_from_sweep(table)
        assert list(b.utilizations) == [0.16, 0.64, 0.96]
        assert b.regimes[0] is CongestionRegime.LOW
        assert b.regimes[-1] is CongestionRegime.SEVERE

    def test_from_sweep_accepts_json(self):
        from repro.analysis.regimes import regime_breakdown_from_sweep
        from repro.sweep import SweepResult

        table = SweepResult(
            {"offered_utilization": [0.2, 0.9], "t_worst_s": [0.4, 4.0]},
            axis_names=("offered_utilization",),
        )
        b = regime_breakdown_from_sweep(table.to_json())
        assert len(b.regimes) == 2


class TestCongestionRegimeTally:
    """Regime counts straight off a curve-joined model sweep's sss column."""

    def _table(self, tmp_path=None):
        from repro.core.parameters import aps_to_alcf_defaults
        from repro.sweep import Axis, SweepSpec, run_model_sweep

        curve = SssCurve(
            size_gb=0.5,
            bandwidth_gbps=25.0,
            measurements=[
                SSSMeasurement(0.5, 25.0, t, u)
                for u, t in [(0.16, 0.3), (0.8, 1.2), (1.28, 8.0)]
            ],
        )
        spec = SweepSpec.grid(
            Axis.linspace("utilization", 0.16, 1.28, 8),
            Axis("s_unit_gb", (0.5,)),
            Axis("bandwidth_gbps", (25.0,)),
        )
        kwargs = {}
        if tmp_path is not None:
            kwargs = {"out": tmp_path / "shards", "block_size": 3}
        return run_model_sweep(
            spec,
            base=aps_to_alcf_defaults(),
            metrics=("sss", "decision"),
            context={"sss_curve": curve},
            **kwargs,
        )

    def test_counts_match_direct_classification(self):
        from repro.analysis.regimes import congestion_regime_tally_from_sweep
        from repro.core.sss import classify_regime, theoretical_transfer_time

        table = self._table()
        tally = congestion_regime_tally_from_sweep(table)
        t_theo = theoretical_transfer_time(0.5, 25.0)
        expected = [
            classify_regime(float(s) * t_theo) for s in table.column("sss")
        ]
        assert sum(tally.values()) == table.n_rows
        for regime, count in tally.items():
            assert count == sum(1 for r in expected if r is regime)
        # The synthetic curve spans all three regimes.
        assert all(count > 0 for count in tally.values())

    def test_sharded_input_matches_in_memory(self, tmp_path):
        from repro.analysis.regimes import congestion_regime_tally_from_sweep

        assert congestion_regime_tally_from_sweep(
            self._table(tmp_path)
        ) == congestion_regime_tally_from_sweep(self._table())
