"""Instrument/frame descriptions."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.workloads.instrument import FrameSpec, Instrument


class TestFrameSpec:
    def test_aps_frame_size(self):
        f = FrameSpec(2048, 2048, 2)
        assert f.nbytes == 8_388_608
        assert f.size_gb == pytest.approx(8.388608e-3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            FrameSpec(0, 100)
        with pytest.raises(ValidationError):
            FrameSpec(100, 100, bytes_per_px=0)


class TestInstrument:
    def _instrument(self, interval=0.001, reduction=10.0):
        return Instrument(
            name="test",
            frame=FrameSpec(1000, 500, 2),  # 1 MB
            frame_interval_s=interval,
            reduction_factor=reduction,
        )

    def test_rates(self):
        inst = self._instrument()
        assert inst.frame_rate_hz == pytest.approx(1000.0)
        assert inst.raw_rate_gbytes_per_s == pytest.approx(1.0)
        assert inst.shipped_rate_gbytes_per_s == pytest.approx(0.1)
        assert inst.shipped_rate_gbps == pytest.approx(0.8)

    def test_no_reduction(self):
        inst = self._instrument(reduction=1.0)
        assert inst.shipped_rate_gbytes_per_s == inst.raw_rate_gbytes_per_s

    def test_shipped_frame_bytes(self):
        inst = self._instrument()
        assert inst.shipped_frame_bytes == pytest.approx(1e5)

    def test_fits_link(self):
        inst = self._instrument()  # ships 0.8 Gbps
        assert inst.fits_link(1.0)
        assert not inst.fits_link(1.0, alpha=0.5)
        assert not inst.fits_link(0.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            self._instrument(interval=0.0)
        with pytest.raises(ValidationError):
            self._instrument(reduction=0.5)
        with pytest.raises(ValidationError):
            Instrument(name="", frame=FrameSpec(10, 10), frame_interval_s=1.0)
