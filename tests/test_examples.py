"""Every shipped example must run end to end and produce its key output.

These are the deliverable's user-facing entry points; breaking one is a
release blocker, so they run as part of the suite (each in a fresh
interpreter, like a user would).
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: (script, substring that must appear in stdout)
CASES = [
    ("quickstart.py", "T_pct"),
    ("aps_tomography_streaming.py", "streaming saves"),
    ("lcls_feasibility.py", "Case-study verdicts"),
    ("congestion_measurement.py", "Data Transfer Scorecard"),
    ("congestion_decision_surface.py", "Decision map"),
    ("facility_survey.py", "Decision map"),
    ("variability_planning.py", "Probability of meeting each tier"),
]


@pytest.mark.parametrize("script,marker", CASES)
def test_example_runs(script, marker):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout, (
        f"{script} did not print {marker!r}; got:\n{proc.stdout[-1000:]}"
    )


def test_examples_directory_complete():
    """Every example on disk is covered by this test."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert on_disk == covered
