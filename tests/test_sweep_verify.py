"""``verify_shards`` / ``repro verify``: every corruption mode becomes a
finding, clean directories audit OK, and exit codes follow severity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.parameters import aps_to_alcf_defaults
from repro.sweep import (
    Axis,
    ShardWriter,
    SweepSpec,
    run_model_sweep,
    verify_shards,
)
from repro.sweep.shards import JOURNAL_NAME, MANIFEST_NAME

BASE = aps_to_alcf_defaults()
SHARD = 64


@pytest.fixture()
def store(tmp_path):
    """A freshly streamed 4-shard store (256 rows)."""
    spec = SweepSpec.grid(
        Axis.geomspace("bandwidth_gbps", 1.0, 100.0, 16),
        Axis.geomspace("s_unit_gb", 0.1, 10.0, 16),
    )
    out = tmp_path / "store"
    run_model_sweep(spec, base=BASE, out=str(out), block_size=SHARD)
    return out


def _manifest(store):
    return json.loads((store / MANIFEST_NAME).read_text())


def _write_manifest(store, manifest):
    (store / MANIFEST_NAME).write_text(json.dumps(manifest))


class TestCleanStore:
    def test_fresh_store_is_ok(self, store):
        report = verify_shards(store)
        assert report.ok
        assert report.errors == []
        assert report.warnings == []
        assert report.n_shards_checked == 4
        assert report.n_rows == 256
        assert report.format_report().splitlines()[-1].startswith("OK:")

    def test_manifest_path_accepted(self, store):
        assert verify_shards(store / MANIFEST_NAME).ok

    def test_empty_store_is_ok(self, tmp_path):
        # A zero-block sweep writes a valid empty manifest + journal.
        out = tmp_path / "empty"
        writer = ShardWriter(out, shard_size=SHARD)
        writer.close()
        report = verify_shards(out)
        assert report.ok
        assert report.n_shards_checked == 0
        assert report.n_rows == 0

    def test_v1_manifest_without_checksums_warns_only(self, store):
        manifest = _manifest(store)
        manifest["version"] = 1
        for entry in manifest["shards"]:
            entry.pop("sha256")
        _write_manifest(store, manifest)
        (store / JOURNAL_NAME).unlink()  # journal would disagree on sha256
        report = verify_shards(store)
        assert report.ok
        assert len(report.warnings) == 4
        assert all("no checksum recorded" in f.problem for f in report.warnings)


class TestCorruption:
    def test_checksum_mismatch(self, store):
        shard = store / "shard-00002.npz"
        shard.write_bytes(shard.read_bytes()[:-40] + b"\x00" * 40)
        report = verify_shards(store)
        assert not report.ok
        assert any(
            f.file == "shard-00002.npz" and "sha256 mismatch" in f.problem
            for f in report.errors
        )

    def test_truncated_shard_without_hashes_caught_by_rows(self, store):
        # Even with --skip-hashes, a torn zip surfaces as unreadable.
        shard = store / "shard-00001.npz"
        shard.write_bytes(shard.read_bytes()[:120])
        report = verify_shards(store, check_hashes=False)
        assert not report.ok
        assert any(
            f.file == "shard-00001.npz" and "unreadable" in f.problem
            for f in report.errors
        )

    def test_missing_shard_file(self, store):
        (store / "shard-00003.npz").unlink()
        report = verify_shards(store)
        assert not report.ok
        assert any(
            f.file == "shard-00003.npz" and "missing on disk" in f.problem
            for f in report.errors
        )

    def test_row_count_mismatch(self, store):
        # Rewrite one shard with a row lopped off every column, keeping
        # the manifest checksum in sync so only the row check can object.
        shard = store / "shard-00000.npz"
        with np.load(shard) as npz:
            arrays = {name: npz[name][:-1] for name in npz.files}
        np.savez(shard, **arrays)
        manifest = _manifest(store)
        from repro.sweep.shards import _sha256_file

        manifest["shards"][0]["sha256"] = _sha256_file(shard)
        _write_manifest(store, manifest)
        (store / JOURNAL_NAME).unlink()
        report = verify_shards(store)
        assert any(
            f.file == "shard-00000.npz" and "63 rows" in f.problem
            for f in report.errors
        )

    def test_stale_manifest_row_sum(self, store):
        manifest = _manifest(store)
        manifest["n_rows"] = 9999
        _write_manifest(store, manifest)
        report = verify_shards(store)
        assert any(
            f.file == MANIFEST_NAME and "row-range gap" in f.problem
            for f in report.errors
        )

    def test_missing_manifest(self, store):
        (store / MANIFEST_NAME).unlink()
        report = verify_shards(store)
        assert not report.ok
        assert any("missing manifest" in f.problem for f in report.errors)

    def test_unsupported_manifest_version(self, store):
        manifest = _manifest(store)
        manifest["version"] = 99
        _write_manifest(store, manifest)
        report = verify_shards(store)
        assert any("unsupported manifest version" in f.problem for f in report.errors)

    def test_manifest_missing_keys(self, store):
        manifest = _manifest(store)
        del manifest["columns"]
        _write_manifest(store, manifest)
        report = verify_shards(store)
        assert any("missing keys" in f.problem for f in report.errors)

    def test_not_a_directory(self, tmp_path):
        report = verify_shards(tmp_path / "nope")
        assert not report.ok


class TestJournalCrossCheck:
    def test_journal_manifest_disagreement(self, store):
        manifest = _manifest(store)
        manifest["shards"][1]["sha256"] = "0" * 64
        _write_manifest(store, manifest)
        report = verify_shards(store, check_hashes=False, check_rows=False)
        assert any(
            f.file == JOURNAL_NAME and "disagrees with the manifest" in f.problem
            for f in report.errors
        )

    def test_journal_shard_count_mismatch(self, store):
        journal = store / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:-1]) + "\n")  # drop last shard rec
        report = verify_shards(store, check_hashes=False, check_rows=False)
        assert any(
            f.file == JOURNAL_NAME and "one of them is stale" in f.problem
            for f in report.errors
        )

    def test_corrupt_journal_is_an_error(self, store):
        journal = store / JOURNAL_NAME
        lines = journal.read_text().splitlines()
        lines[2] = "{not json"
        journal.write_text("\n".join(lines) + "\n")
        report = verify_shards(store)
        assert any(
            f.file == JOURNAL_NAME and "does not parse" in f.problem
            for f in report.errors
        )

    def test_absent_journal_is_fine(self, store):
        (store / JOURNAL_NAME).unlink()
        assert verify_shards(store).ok


class TestResidue:
    def test_tmp_orphan_warns(self, store):
        (store / ".tmp-shard-00009.npz").write_bytes(b"partial")
        report = verify_shards(store)
        assert report.ok  # warnings never fail the audit
        assert any("temp-file orphan" in f.problem for f in report.warnings)

    def test_unlisted_shard_warns(self, store):
        extra = store / "shard-00099.npz"
        extra.write_bytes((store / "shard-00000.npz").read_bytes())
        report = verify_shards(store)
        assert report.ok
        assert any(
            f.file == "shard-00099.npz" and "not listed" in f.problem
            for f in report.warnings
        )


class TestSkipFlags:
    def test_skip_hashes_skips_digest_work(self, store):
        shard = store / "shard-00002.npz"
        # Flip bytes inside the zip *past* the local headers: the hash
        # check would catch it, the row check might not.
        data = bytearray(shard.read_bytes())
        data[-30] ^= 0xFF
        shard.write_bytes(bytes(data))
        assert not verify_shards(store).ok

    def test_skip_rows(self, store):
        report = verify_shards(store, check_rows=False)
        assert report.ok


class TestCli:
    def test_cli_exit_codes_and_report(self, store, capsys):
        assert cli_main(["verify", str(store)]) == 0
        out = capsys.readouterr().out
        assert "OK: 4 shard(s), 256 row(s)" in out
        shard = store / "shard-00000.npz"
        shard.write_bytes(shard.read_bytes()[:80])
        assert cli_main(["verify", str(store)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out
        assert "shard-00000.npz" in out

    def test_cli_skip_flags(self, store, capsys):
        assert cli_main(["verify", str(store), "--skip-hashes", "--skip-rows"]) == 0
        capsys.readouterr()
