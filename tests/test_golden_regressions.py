"""Golden regression tests pinning headline artifact numbers.

The sweep-engine substrate under ``bench_fig2a`` / ``bench_fig4`` /
``bench_table2`` is refactor-prone (vectorization, process executors,
caching); these tests pin the actual numbers the scaled-down paths
produce so a refactor cannot silently shift paper results.  All inputs
are seeded and deterministic, so tolerances are tight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.iperfsim.runner import run_sweep
from repro.iperfsim.spec import SpawnStrategy, table2_sweep
from repro.streaming.comparison import run_figure4

RTOL = 1e-9

#: Figure 2(a) scaled-down golden (duration 2 s, seed 0): max transfer
#: time per offered load, one curve per parallel-flow count.
FIG2A_UTILIZATIONS = [0.16, 0.32, 0.48, 0.64, 0.80, 0.96, 1.12, 1.28]
FIG2A_MAX_T = {
    2: [0.3129461248759209, 0.45689114938035674, 0.6556018928239931,
        0.8646173326816697, 1.1218009267269862, 2.3036018928239934,
        3.6658009267269875, 2.7926173326816706],
    4: [0.2970217922206706, 0.44489114938035673, 0.8076018928239932,
        1.2167749181069485, 2.1916018928239933, 2.668891149380358,
        2.951601892823994, 3.0246173326816708],
    8: [0.2811731269101698, 0.5288911493803568, 0.780891149380357,
        1.1396018928239933, 1.8076018928239932, 2.3076018928239934,
        2.715601892823994, 2.954115103170482],
}

#: Figure 4 golden: completion time (s) per (interval, method, n_files).
FIG4_COMPLETIONS = {
    (0.033, "streaming", None): 47.531355443200006,
    (0.033, "file", 1): 56.270135436800004,
    (0.033, "file", 10): 49.31228841728001,
    (0.033, "file", 144): 153.84499206399983,
    (0.033, "file", 1440): 1480.6519920639596,
    (0.33, "streaming", None): 475.21135544320003,
    (0.33, "file", 1): 483.95013543680005,
    (0.33, "file", 10): 476.99228841728007,
    (0.33, "file", 144): 476.285137344,
    (0.33, "file", 1440): 1480.9489920639596,
}

#: Table 2 golden: the full sweep enumeration order.
TABLE2_ORDER = [
    (c, p) for p in (2, 4, 8) for c in range(1, 9)
]


def test_fig2a_scaled_curves_golden():
    sweep = run_sweep(
        table2_sweep(strategy=SpawnStrategy.BATCH, duration_s=2.0), seeds=(0,)
    )
    assert sorted(sweep.parallel_flow_values()) == sorted(FIG2A_MAX_T)
    for p, golden in FIG2A_MAX_T.items():
        util, max_t = sweep.curve(p)
        np.testing.assert_allclose(util, FIG2A_UTILIZATIONS, rtol=RTOL)
        np.testing.assert_allclose(max_t, golden, rtol=RTOL)


def test_fig4_completions_golden():
    results = run_figure4()
    seen = {}
    for interval, comp in results.items():
        for o in comp.outcomes:
            seen[(interval, o.method, o.n_files)] = o.completion_s
    assert set(seen) == set(FIG4_COMPLETIONS)
    for key, golden in FIG4_COMPLETIONS.items():
        assert seen[key] == pytest.approx(golden, rel=RTOL), key


def test_fig4_headline_reduction_golden():
    """The paper's headline form: streaming's reduction vs 1,440 files."""
    comp = run_figure4()[0.033]
    assert comp.reduction_vs_file_pct(1440) == pytest.approx(
        100.0 * (1.0 - 47.531355443200006 / 1480.6519920639596), rel=RTOL
    )


def test_table2_sweep_order_golden():
    specs = table2_sweep()
    assert [(s.concurrency, s.parallel_flows) for s in specs] == TABLE2_ORDER
    assert [s.offered_utilization() for s in specs] == pytest.approx(
        [c * 0.5 * 8.0 / 25.0 for c, _ in TABLE2_ORDER], rel=RTOL
    )


# ----------------------------------------------------------------------
# Kernel decision/gain columns on the fig4/table2-context model grids
# ----------------------------------------------------------------------

#: Figure-4 context: the 12.6 GB APS tomography scan (aps preset) at
#: streaming (theta=1) vs file staging (theta=3) over a log bandwidth
#: range around the testbed's 25 Gbps.  Codes: 0 local, 1 streaming,
#: 2 file; tier 0 = misses even Tier 3.
FIG4_GRID_DECISION = [0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1,
                      0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]
FIG4_GRID_TIER = [2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 1, 1,
                  2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 1, 1]
FIG4_GRID_GAIN = [
    0.04479840716774514, 0.07698516812874903, 0.1319908644659219,
    0.2254052359659488, 0.3823703397656287, 0.6414677079995702,
    1.0568393947388024, 1.692534138438079, 2.5994602283465054,
    3.771716605255165, 5.1077534882164555, 6.428571428571429,
    0.014977533699450823, 0.025794106953620038, 0.044387538123872895,
    0.0762813598497656, 0.1307908151503607, 0.22337509675586806,
    0.3789812886254868, 0.6359340523754021, 1.0481238221132256,
    1.6795606561820655, 2.5816954127316527, 3.749999999999999,
]

#: Table-2 context: the congestion grid's 0.5 GB transfers at 25 Gbps,
#: transfer efficiency degraded through the eight offered-load levels.
TABLE2_GRID_ALPHAS = (0.96, 0.84, 0.72, 0.6, 0.48, 0.36, 0.24, 0.12)
TABLE2_GRID_DECISION = [1, 0, 0, 0, 0, 0, 0, 0]
TABLE2_GRID_TIER = [1, 1, 1, 1, 1, 1, 1, 1]
TABLE2_GRID_GAIN = [
    0.3846153846153845, 0.3381642512077294, 0.29126213592233,
    0.2439024390243902, 0.196078431372549, 0.14778325123152708,
    0.099009900990099, 0.049751243781094516,
]


def _decision_grid_tables():
    from repro.core.parameters import aps_to_alcf_defaults
    from repro.sweep import Axis, SweepSpec, run_model_sweep

    base = aps_to_alcf_defaults()
    fig4_spec = SweepSpec.grid(
        Axis("theta", (1.0, 3.0)),
        Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 12),
    )
    table2_spec = SweepSpec.grid(Axis("alpha", TABLE2_GRID_ALPHAS))
    metrics = ("decision", "tier", "gain")
    return (
        (run_model_sweep(fig4_spec, base=base, metrics=metrics), base),
        (
            run_model_sweep(
                table2_spec, base=base.replace(s_unit_gb=0.5), metrics=metrics
            ),
            base.replace(s_unit_gb=0.5),
        ),
    )


def test_decision_columns_golden_on_fig4_and_table2_grids():
    """The kernel's decision/tier/gain columns on the fig4/table2-context
    grids are pinned, so a kernel refactor cannot silently flip where
    the strategy decision crosses over."""
    (fig4, _), (table2, _) = _decision_grid_tables()
    assert list(map(int, fig4.column("decision"))) == FIG4_GRID_DECISION
    assert list(map(int, fig4.column("tier"))) == FIG4_GRID_TIER
    np.testing.assert_allclose(
        np.asarray(fig4.column("gain"), dtype=float), FIG4_GRID_GAIN, rtol=RTOL
    )
    assert list(map(int, table2.column("decision"))) == TABLE2_GRID_DECISION
    assert list(map(int, table2.column("tier"))) == TABLE2_GRID_TIER
    np.testing.assert_allclose(
        np.asarray(table2.column("gain"), dtype=float), TABLE2_GRID_GAIN, rtol=RTOL
    )


def test_decision_columns_bit_identical_to_scalar_decide_on_golden_grids():
    """On the same golden grids, the vectorized decision column equals a
    per-point loop over the scalar decision engine exactly."""
    from repro.core.decision import (
        decide,
        highest_feasible_tier,
        strategy_from_code,
        tier_from_code,
    )

    for table, base in _decision_grid_tables():
        for i, row in enumerate(table.rows()):
            params = base.replace(
                **{
                    name: float(row[name])
                    for name in table.axis_names
                    if name in ("theta", "alpha", "bandwidth_gbps")
                }
            )
            d = decide(params)
            assert strategy_from_code(row["decision"]) is d.chosen, i
            assert tier_from_code(row["tier"]) == highest_feasible_tier(
                d.evaluations[d.chosen]
            ), i


# ----------------------------------------------------------------------
# Figure 2(a) -> decision-surface golden: the measured severe-congestion
# curve flips the stream-vs-local decision
# ----------------------------------------------------------------------

#: The P=4 Figure 2(a) curve above (duration 2 s, seed 0) joined onto a
#: (utilization x bandwidth) grid: decision codes nominally and under
#: the measured SSS worst case.  Grid: utilization = the eight offered
#: loads, bandwidth_gbps = geomspace(1, 400, 6); bandwidth varies
#: fastest.  Codes: 0 local, 1 remote-streaming, 2 remote-file.
FIG2A_GRID_DECISION_NOMINAL = [0, 0, 0, 1, 1, 1] * 8
FIG2A_GRID_DECISION_SSS = [
    0, 0, 0, 0, 1, 1,
    0, 0, 0, 0, 1, 1,
    0, 0, 0, 0, 1, 1,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 1,
    0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0,
]

#: Interpolated SSS per offered load on that grid (equal to the curve's
#: own scores because the grid reuses the measured utilisations).
FIG2A_GRID_SSS = [
    1.8563862013791912, 2.7805696836272293, 5.047511830149958,
    7.604843238168428, 13.697511830149958, 16.680569683627237,
    18.447511830149963, 18.90385832926044,
]


def _fig2a_p4_curve():
    from repro.core.sss import SSSMeasurement
    from repro.measurement.congestion import SssCurve

    return SssCurve(
        size_gb=0.5,
        bandwidth_gbps=25.0,
        measurements=[
            SSSMeasurement(0.5, 25.0, t, u)
            for u, t in zip(FIG2A_UTILIZATIONS, FIG2A_MAX_T[4])
        ],
    )


def _fig2a_decision_spec():
    from repro.sweep import Axis, SweepSpec

    return SweepSpec.grid(
        Axis("utilization", tuple(FIG2A_UTILIZATIONS)),
        Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 6),
    )


def test_fig2a_curve_decision_flips_golden():
    """Joining the measured Figure 2(a) curve flips decisions exactly
    where SSS pushes the worst-case stream past local compute: pinned
    codes, one-directional (remote -> local only), everything local in
    the severe-congestion regime."""
    from repro.core.parameters import aps_to_alcf_defaults
    from repro.sweep import run_model_sweep

    base = aps_to_alcf_defaults()
    spec = _fig2a_decision_spec()
    nominal = run_model_sweep(spec, base=base, metrics=("decision",))
    joined = run_model_sweep(
        spec, base=base, metrics=("decision", "sss"),
        context={"sss_curve": _fig2a_p4_curve()},
    )
    nom = [int(v) for v in nominal.column("decision")]
    con = [int(v) for v in joined.column("decision")]
    assert nom == FIG2A_GRID_DECISION_NOMINAL
    assert con == FIG2A_GRID_DECISION_SSS
    # Interpolation at the measured utilisations returns the measured
    # scores themselves, bit for bit.
    np.testing.assert_allclose(
        joined.column("sss")[::6], FIG2A_GRID_SSS, rtol=RTOL
    )
    # Local wins exactly where congestion makes remote's worst case
    # lose; congestion never flips a local point to remote.
    assert all(c == 0 for n, c in zip(nom, con) if n == 0)
    # Severe congestion (the last two offered loads, SSS > 18): every
    # bandwidth in range decides local.
    assert con[-12:] == [0] * 12


# ----------------------------------------------------------------------
# Congestion-control zoo goldens: per-CC Figure 2(a) curves and the
# mixed-CC Table-2 subgrid, with the decision flips each curve induces
# ----------------------------------------------------------------------

#: Per-CC worst-case curves on the Figure-2(a) P=4 config (duration
#: 2 s, seed 0).  Reno is FIG2A_MAX_T[4] and must never move; DCTCP
#: flattens the congested tail (shallow queues), the delay controller
#: underutilises and drags the tail out.
CC_FIG2A_MAX_T = {
    "reno": FIG2A_MAX_T[4],
    "dctcp": [0.2759519790965925, 0.46889114938035675, 0.7876018928239932,
              0.992891149380357, 1.5823270558862061, 1.6537932614930215,
              1.899947827286369, 2.1959478272863695],
    "delay": [0.33590639858708493, 0.5688911493803568, 0.7816114660733424,
              0.9968911493803571, 1.7029092750661952, 1.855947827286369,
              2.4711602789480906, 3.5045813884782633],
}

#: Decision codes after joining each CC's measured curve onto the
#: (utilization x bandwidth) grid of `_fig2a_decision_spec` (codes: 0
#: local, 1 remote-streaming).  Reno equals FIG2A_GRID_DECISION_SSS;
#: DCTCP's flatter tail keeps high-bandwidth streaming viable even at
#: the two severest loads, the delay controller only at one.
CC_FIG2A_GRID_DECISION = {
    "reno": FIG2A_GRID_DECISION_SSS,
    "dctcp": [0, 0, 0, 0, 1, 1] * 3 + [0, 0, 0, 0, 0, 1] * 5,
    "delay": [0, 0, 0, 0, 1, 1] * 3 + [0, 0, 0, 0, 0, 1] * 4
    + [0, 0, 0, 0, 0, 0],
}

#: Mixed-CC Table-2 subgrid golden (duration 2 s, seed 0): concurrency
#: in {2, 6} at P=4 for every CC, in table2_sweep enumeration order
#: (cc slowest).  Keys: (cc code, concurrency, parallel_flows).
CC_TABLE2_SUBGRID = {
    (0, 2, 4): (0.44489114938035673, 0.4494382022471907),
    (0, 6, 4): (2.668891149380358, 0.8727212006956901),
    (1, 2, 4): (0.46889114938035675, 0.4532577903682718),
    (1, 6, 4): (1.6537932614930215, 0.8330379383120462),
    (2, 2, 4): (0.5688911493803568, 0.41775456919060017),
    (2, 6, 4): (1.855947827286369, 0.656713676897907),
}


@pytest.mark.parametrize("cc", ["reno", "dctcp", "delay"])
def test_cc_fig2a_curves_golden(cc):
    """Per-CC SSS curves on the Figure-2(a) P=4 config are pinned —
    including that the Reno curve is exactly the pre-zoo golden."""
    from repro.measurement.congestion import measure_sss_curve

    curve = measure_sss_curve(duration_s=2.0, seeds=(0,), cc=cc)
    np.testing.assert_allclose(curve.utilizations, FIG2A_UTILIZATIONS, rtol=RTOL)
    np.testing.assert_allclose(curve.t_worst_values, CC_FIG2A_MAX_T[cc], rtol=RTOL)


@pytest.mark.parametrize("cc", ["reno", "dctcp", "delay"])
def test_cc_fig2a_decision_flips_golden(cc):
    """Which transport the facility deploys changes where streaming
    survives congestion: the per-CC joined decision codes are pinned."""
    from repro.core.parameters import aps_to_alcf_defaults
    from repro.measurement.congestion import measure_sss_curve
    from repro.sweep import run_model_sweep

    curve = measure_sss_curve(duration_s=2.0, seeds=(0,), cc=cc)
    joined = run_model_sweep(
        _fig2a_decision_spec(), base=aps_to_alcf_defaults(),
        metrics=("decision",), context={"sss_curve": curve},
    )
    codes = [int(v) for v in joined.column("decision")]
    assert codes == CC_FIG2A_GRID_DECISION[cc]


def test_cc_table2_subgrid_golden():
    """The mixed-CC Table-2 subgrid (values per cell, cc slowest axis)
    is pinned, Reno cells bit-equal to the pre-zoo curves."""
    specs = [
        s for s in table2_sweep(
            strategy=SpawnStrategy.BATCH, duration_s=2.0,
            cc=("reno", "dctcp", "delay"),
        )
        if s.parallel_flows == 4 and s.concurrency in (2, 6)
    ]
    sweep = run_sweep(specs, seeds=(0,))
    keys = [
        (int(e.spec.cc), e.spec.concurrency, e.spec.parallel_flows)
        for e in sweep.experiments
    ]
    assert keys == list(CC_TABLE2_SUBGRID)  # enumeration order, cc slowest
    for e, key in zip(sweep.experiments, keys):
        t_golden, util_golden = CC_TABLE2_SUBGRID[key]
        assert e.max_transfer_time_s == pytest.approx(t_golden, rel=RTOL), key
        assert e.achieved_utilization == pytest.approx(util_golden, rel=RTOL), key
    # The Reno cells equal the pre-zoo P=4 golden curve at c=2 and c=6.
    assert CC_TABLE2_SUBGRID[(0, 2, 4)][0] == FIG2A_MAX_T[4][1]
    assert CC_TABLE2_SUBGRID[(0, 6, 4)][0] == FIG2A_MAX_T[4][5]


def test_sss_export_sweep_roundtrip_golden(tmp_path, capsys):
    """`repro sss --out` -> `repro sweep --sss-curve` end to end: the
    exported artifact carries exactly the Figure 2(a) P=4 worst-case
    times, and the joined sweep reproduces the pinned decision flips."""
    from repro.cli import main
    from repro.measurement.congestion import SssCurve

    path = tmp_path / "curve.json"
    assert main(["sss", "--duration", "2", "--seeds", "0",
                 "--out", str(path)]) == 0
    capsys.readouterr()
    curve = SssCurve.load(path)
    np.testing.assert_allclose(
        curve.utilizations, FIG2A_UTILIZATIONS, rtol=RTOL
    )
    np.testing.assert_allclose(curve.t_worst_values, FIG2A_MAX_T[4], rtol=RTOL)

    assert main([
        "sweep", "--sss-curve", str(path),
        "--axis", "utilization=" + ",".join(str(u) for u in FIG2A_UTILIZATIONS),
        "--axis", "bandwidth_gbps=1:400:6:log",
        "--metrics", "decision", "--format", "csv",
    ]) == 0
    rows = capsys.readouterr().out.strip().splitlines()[1:]
    assert [int(r.rsplit(",", 1)[1]) for r in rows] == FIG2A_GRID_DECISION_SSS
