"""Golden regression tests pinning headline artifact numbers.

The sweep-engine substrate under ``bench_fig2a`` / ``bench_fig4`` /
``bench_table2`` is refactor-prone (vectorization, process executors,
caching); these tests pin the actual numbers the scaled-down paths
produce so a refactor cannot silently shift paper results.  All inputs
are seeded and deterministic, so tolerances are tight.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.iperfsim.runner import run_sweep
from repro.iperfsim.spec import SpawnStrategy, table2_sweep
from repro.streaming.comparison import run_figure4

RTOL = 1e-9

#: Figure 2(a) scaled-down golden (duration 2 s, seed 0): max transfer
#: time per offered load, one curve per parallel-flow count.
FIG2A_UTILIZATIONS = [0.16, 0.32, 0.48, 0.64, 0.80, 0.96, 1.12, 1.28]
FIG2A_MAX_T = {
    2: [0.3129461248759209, 0.45689114938035674, 0.6556018928239931,
        0.8646173326816697, 1.1218009267269862, 2.3036018928239934,
        3.6658009267269875, 2.7926173326816706],
    4: [0.2970217922206706, 0.44489114938035673, 0.8076018928239932,
        1.2167749181069485, 2.1916018928239933, 2.668891149380358,
        2.951601892823994, 3.0246173326816708],
    8: [0.2811731269101698, 0.5288911493803568, 0.780891149380357,
        1.1396018928239933, 1.8076018928239932, 2.3076018928239934,
        2.715601892823994, 2.954115103170482],
}

#: Figure 4 golden: completion time (s) per (interval, method, n_files).
FIG4_COMPLETIONS = {
    (0.033, "streaming", None): 47.531355443200006,
    (0.033, "file", 1): 56.270135436800004,
    (0.033, "file", 10): 49.31228841728001,
    (0.033, "file", 144): 153.84499206399983,
    (0.033, "file", 1440): 1480.6519920639596,
    (0.33, "streaming", None): 475.21135544320003,
    (0.33, "file", 1): 483.95013543680005,
    (0.33, "file", 10): 476.99228841728007,
    (0.33, "file", 144): 476.285137344,
    (0.33, "file", 1440): 1480.9489920639596,
}

#: Table 2 golden: the full sweep enumeration order.
TABLE2_ORDER = [
    (c, p) for p in (2, 4, 8) for c in range(1, 9)
]


@pytest.mark.slow
def test_fig2a_scaled_curves_golden():
    sweep = run_sweep(
        table2_sweep(strategy=SpawnStrategy.BATCH, duration_s=2.0), seeds=(0,)
    )
    assert sorted(sweep.parallel_flow_values()) == sorted(FIG2A_MAX_T)
    for p, golden in FIG2A_MAX_T.items():
        util, max_t = sweep.curve(p)
        np.testing.assert_allclose(util, FIG2A_UTILIZATIONS, rtol=RTOL)
        np.testing.assert_allclose(max_t, golden, rtol=RTOL)


def test_fig4_completions_golden():
    results = run_figure4()
    seen = {}
    for interval, comp in results.items():
        for o in comp.outcomes:
            seen[(interval, o.method, o.n_files)] = o.completion_s
    assert set(seen) == set(FIG4_COMPLETIONS)
    for key, golden in FIG4_COMPLETIONS.items():
        assert seen[key] == pytest.approx(golden, rel=RTOL), key


def test_fig4_headline_reduction_golden():
    """The paper's headline form: streaming's reduction vs 1,440 files."""
    comp = run_figure4()[0.033]
    assert comp.reduction_vs_file_pct(1440) == pytest.approx(
        100.0 * (1.0 - 47.531355443200006 / 1480.6519920639596), rel=RTOL
    )


def test_table2_sweep_order_golden():
    specs = table2_sweep()
    assert [(s.concurrency, s.parallel_flows) for s in specs] == TABLE2_ORDER
    assert [s.offered_utilization() for s in specs] == pytest.approx(
        [c * 0.5 * 8.0 / 25.0 for c, _ in TABLE2_ORDER], rel=RTOL
    )
