"""Property-based tests of the closed-form model (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import importlib

gain_mod = importlib.import_module("repro.core.gain")

from repro.core import model

sizes = st.floats(min_value=1e-3, max_value=1e4)
complexities = st.floats(min_value=1e6, max_value=1e15)
rates = st.floats(min_value=1e-2, max_value=1e4)
bandwidths = st.floats(min_value=1e-2, max_value=1e4)
alphas = st.floats(min_value=1e-3, max_value=1.0)
rs = st.floats(min_value=1e-2, max_value=1e4)
thetas = st.floats(min_value=1.0, max_value=1e3)


@given(sizes, complexities, rates, bandwidths, alphas, rs, thetas)
def test_tpct_positive(s, c, rl, bw, a, r, th):
    assert model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th) > 0


@given(sizes, complexities, rates, bandwidths, alphas, rs, thetas)
def test_tpct_linear_in_size(s, c, rl, bw, a, r, th):
    t1 = model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th)
    t2 = model.t_pct(2 * s, c, rl, bw, alpha=a, r=r, theta=th)
    assert t2 == pytest.approx(2 * t1, rel=1e-9)


@given(sizes, complexities, rates, bandwidths, alphas, rs, thetas)
def test_tpct_bounded_below_by_transfer(s, c, rl, bw, a, r, th):
    # The compute term is non-negative, so T_pct >= theta * T_transfer.
    assert model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th) >= (
        th * model.t_transfer(s, bw, a) * (1 - 1e-12)
    )


@given(sizes, complexities, rates, bandwidths, alphas, rs)
def test_tpct_monotone_in_theta(s, c, rl, bw, a, r):
    th = np.array([1.0, 2.0, 5.0, 50.0])
    out = model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th)
    assert np.all(np.diff(out) > 0)


@given(sizes, complexities, rates, bandwidths, rs, thetas)
def test_tpct_monotone_decreasing_in_alpha(s, c, rl, bw, r, th):
    a = np.array([0.1, 0.5, 0.9, 1.0])
    out = model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th)
    assert np.all(np.diff(out) < 0)


@given(sizes, complexities, rates, bandwidths, alphas, thetas)
def test_tpct_monotone_decreasing_in_r(s, c, rl, bw, a, th):
    r = np.array([0.5, 1.0, 2.0, 10.0, 1000.0])
    out = model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th)
    assert np.all(np.diff(out) <= 0)


@given(sizes, complexities, rates, bandwidths, alphas, rs, thetas)
def test_speedup_consistent_with_components(s, c, rl, bw, a, r, th):
    g = model.speedup(s, c, rl, bw, alpha=a, r=r, theta=th)
    assert g == pytest.approx(
        model.t_local(s, c, rl)
        / model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th),
        rel=1e-9,
    )


@given(sizes, complexities, rates, bandwidths, alphas, thetas)
def test_remote_never_wins_with_r_leq_one(s, c, rl, bw, a, th):
    # Transfer time is strictly positive, so equal-speed remote loses.
    assert not model.remote_is_faster(s, c, rl, bw, alpha=a, r=1.0, theta=th)


@given(sizes, complexities, rates, bandwidths, alphas, rs, thetas)
def test_gain_function_matches_speedup(s, c, rl, bw, a, r, th):
    k = gain_mod.kappa(c, rl, bw)
    g1 = gain_mod.gain(a, r, th, k)
    g2 = model.speedup(s, c, rl, bw, alpha=a, r=r, theta=th)
    assert g1 == pytest.approx(g2, rel=1e-9)


@given(complexities, rates, bandwidths, alphas, thetas)
@settings(max_examples=50)
def test_gain_increases_with_r_to_asymptote(c, rl, bw, a, th):
    k = gain_mod.kappa(c, rl, bw)
    gains = [gain_mod.gain(a, r, th, k) for r in (1.0, 2.0, 10.0, 1e6)]
    assert all(g2 >= g1 * (1 - 1e-12) for g1, g2 in zip(gains, gains[1:]))
    assert gains[-1] <= gain_mod.asymptotic_gain(a, th, k) * (1 + 1e-9)


@given(sizes, complexities, rates, alphas, rs, thetas)
def test_speedup_monotone_in_bandwidth(s, c, rl, a, r, th):
    """More bandwidth never hurts remote processing.  (Non-strict: when
    the compute term dwarfs the transfer term the float speedups can
    tie; strictness is pinned by the deterministic test below.)"""
    bw = np.array([0.1, 1.0, 10.0, 100.0, 1000.0])
    out = model.speedup(s, c, rl, bw, alpha=a, r=r, theta=th)
    assert np.all(np.diff(out) >= 0)


def test_speedup_strictly_increasing_in_bandwidth_when_transfer_bound():
    bw = np.array([1.0, 5.0, 25.0, 100.0, 400.0])
    out = model.speedup(2.0, 17e12, 10.0, bw, alpha=0.8, r=10.0, theta=3.0)
    assert np.all(np.diff(out) > 0)


@given(sizes, complexities, rates, bandwidths, alphas, rs, thetas)
def test_tpct_at_least_t_transfer(s, c, rl, bw, a, r, th):
    """T_pct >= T_transfer: remote completion includes at least the
    (theta >= 1) transfer itself."""
    assert model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th) >= (
        model.t_transfer(s, bw, a) * (1 - 1e-12)
    )


@given(
    st.lists(bandwidths, min_size=1, max_size=8),
    sizes, complexities, rates, alphas, rs, thetas,
)
@settings(max_examples=50)
def test_scalar_vs_array_broadcasting_agree(bws, s, c, rl, a, r, th):
    """One vectorized call over an axis equals the per-scalar loop,
    elementwise — the guarantee the sweep fast path rests on."""
    arr = np.asarray(bws, dtype=float)
    for fn, args in [
        (model.t_transfer, lambda b: (s, b, a)),
        (model.t_pct, lambda b: (s, c, rl, b)),
        (model.speedup, lambda b: (s, c, rl, b)),
    ]:
        kw = {} if fn is model.t_transfer else dict(alpha=a, r=r, theta=th)
        vec = np.asarray(fn(*args(arr), **kw))
        assert vec.shape == arr.shape
        for i, b in enumerate(bws):
            assert vec[i] == fn(*args(b), **kw)


@given(sizes, sizes, bandwidths, bandwidths, complexities, rates, alphas, rs, thetas)
@settings(max_examples=50)
def test_2d_broadcasting_agrees_with_nested_loops(s1, s2, b1, b2, c, rl, a, r, th):
    """Outer-product broadcasting (size column x bandwidth row) matches
    the nested scalar loops cell by cell."""
    s_col = np.array([[s1], [s2]])
    bw_row = np.array([b1, b2])
    grid = model.t_pct(s_col, c, rl, bw_row, alpha=a, r=r, theta=th)
    assert grid.shape == (2, 2)
    for i, s in enumerate((s1, s2)):
        for j, bw in enumerate((b1, b2)):
            assert grid[i, j] == model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th)


@given(complexities, rates, bandwidths, alphas, thetas)
@settings(max_examples=50)
def test_break_even_theta_is_exact(c, rl, bw, a, th):
    # At theta = theta*, gain == 1 (when the break-even is feasible).
    k = gain_mod.kappa(c, rl, bw)
    r = 5.0
    theta_star = gain_mod.break_even_theta(a, r, k)
    if theta_star >= 1.0:
        assert gain_mod.gain(a, r, theta_star, k) == pytest.approx(1.0, rel=1e-9)
