"""The Figure-4 APS scan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.workloads.instrument import FrameSpec
from repro.workloads.scan import (
    FIGURE4_FRAME_INTERVALS,
    ScanSpec,
    aps_scan_fast,
    aps_scan_slow,
)


class TestPaperNumbers:
    def test_volume_approximately_12_6_gb(self):
        # 1440 x 2048 x 2048 x 2 B = 12.08 GB (paper rounds to 12.6).
        scan = aps_scan_fast()
        assert scan.total_gb == pytest.approx(12.0796, rel=1e-3)
        assert scan.n_frames == 1440

    def test_both_rates(self):
        assert aps_scan_fast().frame_interval_s == 0.033
        assert aps_scan_slow().frame_interval_s == 0.33
        assert FIGURE4_FRAME_INTERVALS == (0.033, 0.33)

    def test_generation_times(self):
        assert aps_scan_fast().generation_time_s == pytest.approx(47.52)
        assert aps_scan_slow().generation_time_s == pytest.approx(475.2)

    def test_generation_rate(self):
        # ~254 MB/s at the fast cadence — well under 25 Gbps.
        assert aps_scan_fast().generation_rate_gbytes_per_s == pytest.approx(
            0.2542, rel=1e-3
        )


class TestFrameTimes:
    def test_first_and_last(self):
        scan = aps_scan_fast()
        times = scan.frame_times_s()
        assert times[0] == pytest.approx(0.033)
        assert times[-1] == pytest.approx(scan.generation_time_s)

    def test_uniform_spacing(self):
        times = aps_scan_fast().frame_times_s()
        np.testing.assert_allclose(np.diff(times), 0.033)


class TestHelpers:
    def test_with_interval(self):
        slow = aps_scan_fast().with_interval(0.33)
        assert slow.frame_interval_s == 0.33
        assert slow.n_frames == 1440

    def test_validation(self):
        frame = FrameSpec(16, 16, 2)
        with pytest.raises(ValidationError):
            ScanSpec(frame=frame, n_frames=0, frame_interval_s=0.1)
        with pytest.raises(ValidationError):
            ScanSpec(frame=frame, n_frames=1, frame_interval_s=0.0)
