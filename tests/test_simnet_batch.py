"""Experiment-batched simulation: bit-equivalence and isolation.

The batched engine's contract is *bit-identity*: stacking experiments
into one vectorized update must not change a single bit of any
experiment's outputs relative to running it alone on the sequential
:class:`FluidTcpSimulator` with the same seed — for any batch
composition, batch size or worker split.  These tests pin that
contract, plus the adaptive time advance and the columnar result views.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.iperfsim.runner import (
    run_experiment,
    run_experiments_batched,
    run_sweep,
)
from repro.iperfsim.spec import ExperimentSpec, SpawnStrategy
from repro.simnet.batch import BatchFluidSimulator
from repro.simnet.link import Link, fabric_link
from repro.simnet.tcp import FluidTcpSimulator, TcpConfig


def assert_results_bit_identical(a, b, label=""):
    """Two SimulationResults must match in every column and scalar."""
    assert a.end_time_s == b.end_time_s, label
    assert a.capacity_bytes_per_s == b.capacity_bytes_per_s, label
    for name, col in a.flow_columns.items():
        np.testing.assert_array_equal(
            col, b.flow_columns[name], err_msg=f"{label} flow col {name}"
        )
    for name, col in a.sample_columns.items():
        np.testing.assert_array_equal(
            col, b.sample_columns[name], err_msg=f"{label} sample col {name}"
        )


def sequential_run(link, flows, config=None, seed=0, max_time_s=300.0):
    sim = FluidTcpSimulator(link, config=config, seed=seed)
    for f in flows:
        sim.add_flow(*f)
    return sim.run(max_time_s=max_time_s)


def batched_run(cases, max_time_s=300.0):
    """cases: list of (link, config, seed, flows)."""
    bat = BatchFluidSimulator()
    for link, config, seed, flows in cases:
        e = bat.add_experiment(link, config=config, seed=seed)
        for f in flows:
            bat.add_flow(e, *f)
    return bat.run(max_time_s=max_time_s)


def mixed_cases():
    tiny = Link(capacity_gbps=25.0, rtt_s=0.016, buffer_bdp=0.05)
    return [
        (fabric_link(), None, 0, [(0.0, 0.5e9, 0), (0.0, 0.5e9, 1)]),
        (fabric_link(), None, 1, [(float(c) * 0.5, 0.2e9, c) for c in range(6)]),
        (tiny, None, 3, [(0.0, 0.25e9 / 8, c) for c in range(16)]),
        (fabric_link(), None, 2, [(2.5, 30e6, 0), (9.0, 30e6, 1)]),
        (
            fabric_link(),
            TcpConfig(hystart_delay_frac=0.125),
            5,
            [(0.0, 0.5e9, c) for c in range(8)],
        ),
    ]


class TestBitEquivalence:
    def test_mixed_batch_matches_sequential(self):
        cases = mixed_cases()
        batched = batched_run(cases)
        for i, ((link, config, seed, flows), b) in enumerate(zip(cases, batched)):
            a = sequential_run(link, flows, config=config, seed=seed)
            assert_results_bit_identical(a, b, label=f"case {i}")

    def test_max_time_truncation_matches_sequential(self):
        cases = [
            (fabric_link(), None, 0, [(0.0, 100e9, 0)]),  # cannot finish
            (fabric_link(), None, 1, [(0.5, 10e6, 0)]),
        ]
        batched = batched_run(cases, max_time_s=1.0)
        for (link, config, seed, flows), b in zip(cases, batched):
            a = sequential_run(link, flows, config=config, seed=seed, max_time_s=1.0)
            assert_results_bit_identical(a, b)
        assert not batched[0].all_completed
        assert batched[1].all_completed

    def test_idle_skip_schedule_matches_sequential(self):
        """Sparse spawn schedules exercise the adaptive time advance."""
        flows = [(10.0 * k, 5e6, k) for k in range(8)]
        (b,) = batched_run([(fabric_link(), None, 0, flows)], max_time_s=200.0)
        a = sequential_run(fabric_link(), flows, seed=0, max_time_s=200.0)
        assert_results_bit_identical(a, b)
        assert b.all_completed

    def test_single_experiment_batch_is_sequential(self):
        flows = [(float(c), 0.5e9 / 4, c) for c in range(4)]
        (b,) = batched_run([(fabric_link(), None, 7, flows)])
        a = sequential_run(fabric_link(), flows, seed=7)
        assert_results_bit_identical(a, b)

    def test_heterogeneous_links_same_dt(self):
        fat = Link(capacity_gbps=100.0, rtt_s=0.016)
        cases = [
            (fat, None, 0, [(0.0, 1e9, 0), (0.2, 1e9, 1)]),
            (fabric_link(), None, 0, [(0.0, 1e9, 0), (0.2, 1e9, 1)]),
        ]
        for (link, config, seed, flows), b in zip(cases, batched_run(cases)):
            a = sequential_run(link, flows, config=config, seed=seed)
            assert_results_bit_identical(a, b)


def cc_mixed_cases():
    """Batch compositions that exercise every congestion-control rule:
    same-CC congested batches per kind, kinds mixed on one bottleneck,
    tiny buffers with forced marking + exogenous loss, and tuned
    delay-controller knobs.  Flow tuples carry (start, size, client,
    cc) and pass straight through ``add_flow``."""
    tiny = Link(capacity_gbps=25.0, rtt_s=0.016, buffer_bdp=0.05)
    return [
        (fabric_link(), None, 0, [(0.0, 0.5e9, c, "dctcp") for c in range(8)]),
        (fabric_link(), None, 1, [(0.0, 0.5e9, c, "delay") for c in range(8)]),
        (
            fabric_link(),
            None,
            2,
            [
                (0.0, 0.4e9, 0, "reno"),
                (0.0, 0.4e9, 1, "dctcp"),
                (0.1, 0.4e9, 2, "delay"),
                (0.2, 0.4e9, 3, "dctcp"),
            ],
        ),
        (
            tiny,
            TcpConfig(dctcp_marking_bdp=0.02, loss_rate=1e-4),
            3,
            [
                (0.0, 0.25e9 / 8, c, ("reno", "dctcp", "delay")[c % 3])
                for c in range(12)
            ],
        ),
        (
            fabric_link(),
            TcpConfig(
                delay_threshold=1.05,
                delay_backoff=0.3,
                delay_gain=1.0,
                hystart_delay_frac=0.125,
            ),
            5,
            [(0.0, 0.3e9, c, "delay") for c in range(6)]
            + [(0.5, 0.3e9, 6, "reno")],
        ),
    ]


class TestCcBitEquivalence:
    """Per-CC and mixed-CC batches must stay bit-identical to the
    sequential reference engine — the tentpole contract of the zoo."""

    @pytest.mark.parametrize("cc", ["reno", "dctcp", "delay"])
    def test_single_cc_batch_matches_sequential(self, cc):
        flows = [(0.0, 0.5e9, c, cc) for c in range(6)]
        (b,) = batched_run([(fabric_link(), None, 0, flows)])
        a = sequential_run(fabric_link(), flows, seed=0)
        assert_results_bit_identical(a, b, label=f"cc={cc}")

    def test_mixed_cc_batch_matches_sequential(self):
        cases = cc_mixed_cases()
        batched = batched_run(cases)
        for i, ((link, config, seed, flows), b) in enumerate(zip(cases, batched)):
            a = sequential_run(link, flows, config=config, seed=seed)
            assert_results_bit_identical(a, b, label=f"cc case {i}")

    def test_cc_batch_order_does_not_matter(self):
        cases = cc_mixed_cases()
        forward = batched_run(cases)
        backward = batched_run(list(reversed(cases)))
        for f, b in zip(forward, reversed(backward)):
            assert_results_bit_identical(f, b, label="cc order")

    def cc_specs(self):
        return [
            ExperimentSpec(
                concurrency=c, parallel_flows=2, duration_s=2.0, cc=cc
            )
            for c in (2, 4)
            for cc in ("reno", "dctcp", "delay")
        ]

    @pytest.mark.parametrize("batch_size", [1, 2, 5, 100])
    def test_mixed_cc_batch_size_invariance(self, batch_size):
        """Any chunking of a mixed-CC unit stack reproduces the
        per-experiment sequential reference exactly."""
        units = [(spec, seed) for spec in self.cc_specs() for seed in (0,)]
        chunked = run_experiments_batched(units, batch_size=batch_size)
        for (spec, seed), b in zip(units, chunked):
            a = run_experiment(spec, seed=seed)
            assert a.client_times_s == b.client_times_s
            assert a.achieved_utilization == b.achieved_utilization

    @pytest.mark.parametrize("workers", [2, 3])
    def test_mixed_cc_workers_bit_identical(self, workers):
        specs = self.cc_specs()
        serial = run_sweep(specs, seeds=(0, 1), workers=1)
        split = run_sweep(specs, seeds=(0, 1), workers=workers)
        for ea, eb in zip(serial.experiments, split.experiments):
            assert ea.client_times_s == eb.client_times_s
            assert ea.achieved_utilization == eb.achieved_utilization


class TestCcRuleEquivalence:
    """Hypothesis-driven isolation of each new cwnd rule: randomly
    tuned controller knobs must never open a batch/sequential gap."""

    @settings(max_examples=8, deadline=None)
    @given(
        gain=st.floats(0.01, 1.0),
        marking=st.floats(0.01, 0.3),
        seed=st.integers(0, 20),
    )
    def test_dctcp_backoff_rule(self, gain, marking, seed):
        config = TcpConfig(dctcp_gain=gain, dctcp_marking_bdp=marking)
        flows = [(0.0, 0.4e9, c, "dctcp") for c in range(6)]
        (b,) = batched_run([(fabric_link(), config, seed, flows)])
        a = sequential_run(fabric_link(), flows, config=config, seed=seed)
        assert_results_bit_identical(a, b, label="dctcp rule")

    @settings(max_examples=8, deadline=None)
    @given(
        threshold=st.floats(1.0, 1.5),
        backoff=st.floats(0.05, 1.0),
        gain=st.floats(0.05, 2.0),
        seed=st.integers(0, 20),
    )
    def test_delay_backoff_and_ramp_rules(self, threshold, backoff, gain, seed):
        config = TcpConfig(
            delay_threshold=threshold, delay_backoff=backoff, delay_gain=gain
        )
        flows = [(0.0, 0.4e9, c, "delay") for c in range(6)]
        (b,) = batched_run([(fabric_link(), config, seed, flows)])
        a = sequential_run(fabric_link(), flows, config=config, seed=seed)
        assert_results_bit_identical(a, b, label="delay rule")

    @settings(max_examples=8, deadline=None)
    @given(loss=st.floats(1e-6, 1e-3), seed=st.integers(0, 20))
    def test_exogenous_loss_rule(self, loss, seed):
        config = TcpConfig(loss_rate=loss)
        flows = [
            (0.0, 0.3e9, c, ("reno", "dctcp", "delay")[c % 3])
            for c in range(6)
        ]
        (b,) = batched_run([(fabric_link(), config, seed, flows)])
        a = sequential_run(fabric_link(), flows, config=config, seed=seed)
        assert_results_bit_identical(a, b, label="loss rule")

    @settings(max_examples=10, deadline=None)
    @given(
        seed_a=st.integers(0, 30),
        seed_b=st.integers(0, 30),
        cc_extra=st.sampled_from(["reno", "dctcp", "delay"]),
        n_extra=st.integers(1, 3),
        extra_size=st.floats(1e6, 5e8),
    )
    def test_foreign_cc_experiment_never_perturbs(
        self, seed_a, seed_b, cc_extra, n_extra, extra_size
    ):
        """A joining experiment of any CC kind must not move a single
        bit of a mixed-CC experiment already in the batch."""
        flows_a = [
            (0.0, 0.3e9, 0, "reno"),
            (0.2, 0.3e9, 1, "dctcp"),
            (0.4, 0.3e9, 2, "delay"),
        ]
        (alone,) = batched_run([(fabric_link(), None, seed_a, flows_a)])
        extra = [
            (0.1 * k, extra_size, k, cc_extra) for k in range(n_extra)
        ]
        together = batched_run(
            [
                (fabric_link(), None, seed_a, flows_a),
                (fabric_link(), None, seed_b, extra),
            ]
        )
        assert_results_bit_identical(alone, together[0], label="cc isolation")


class TestExperimentIsolation:
    @settings(max_examples=15, deadline=None)
    @given(
        seed_a=st.integers(0, 50),
        seed_b=st.integers(0, 50),
        n_extra=st.integers(1, 3),
        extra_size=st.floats(1e6, 1e9),
        extra_start=st.floats(0.0, 3.0),
    )
    def test_adding_experiments_never_changes_another(
        self, seed_a, seed_b, n_extra, extra_size, extra_start
    ):
        """Block-diagonal sharing: an unrelated experiment joining the
        batch must not perturb another experiment's outputs at all."""
        flows_a = [(0.0, 0.3e9, 0), (0.5, 0.3e9, 1), (1.0, 0.2e9, 2)]
        (alone,) = batched_run([(fabric_link(), None, seed_a, flows_a)])
        extra_flows = [
            (extra_start + 0.1 * k, extra_size, k) for k in range(n_extra)
        ]
        together = batched_run(
            [
                (fabric_link(), None, seed_a, flows_a),
                (fabric_link(), None, seed_b, extra_flows),
            ]
        )
        assert_results_bit_identical(alone, together[0], label="isolation")

    def test_batch_order_does_not_matter(self):
        cases = mixed_cases()
        forward = batched_run(cases)
        backward = batched_run(list(reversed(cases)))
        for f, b in zip(forward, reversed(backward)):
            assert_results_bit_identical(f, b, label="order")


class TestBatchRunner:
    def short_specs(self):
        return [
            ExperimentSpec(concurrency=c, parallel_flows=2, duration_s=2.0)
            for c in (1, 2, 4)
        ]

    def test_batched_units_match_run_experiment(self):
        units = [(spec, seed) for spec in self.short_specs() for seed in (0, 1)]
        batched = run_experiments_batched(units)
        for (spec, seed), b in zip(units, batched):
            a = run_experiment(spec, seed=seed)
            assert a.client_times_s == b.client_times_s
            assert a.achieved_utilization == b.achieved_utilization
            assert a.offered_utilization == b.offered_utilization

    @pytest.mark.parametrize("batch_size", [1, 2, 3, 100])
    def test_batch_size_invariance(self, batch_size):
        units = [(spec, seed) for spec in self.short_specs() for seed in (0, 1)]
        reference = run_experiments_batched(units, batch_size=None)
        chunked = run_experiments_batched(units, batch_size=batch_size)
        for a, b in zip(reference, chunked):
            assert a.client_times_s == b.client_times_s
            assert a.achieved_utilization == b.achieved_utilization

    def test_run_sweep_pools_identically_across_batch_sizes(self):
        specs = self.short_specs()
        a = run_sweep(specs, seeds=(0, 1), batch_size=2)
        b = run_sweep(specs, seeds=(0, 1))
        for ea, eb in zip(a.experiments, b.experiments):
            assert ea.client_times_s == eb.client_times_s
            assert ea.max_transfer_time_s == eb.max_transfer_time_s
            assert ea.achieved_utilization == eb.achieved_utilization

    def test_run_sweep_workers_bit_identical(self):
        specs = self.short_specs()
        serial = run_sweep(specs, seeds=(0, 1), workers=1)
        parallel = run_sweep(specs, seeds=(0, 1), workers=2)
        for ea, eb in zip(serial.experiments, parallel.experiments):
            assert ea.client_times_s == eb.client_times_s
            assert ea.achieved_utilization == eb.achieved_utilization

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValidationError):
            run_experiments_batched(
                [(self.short_specs()[0], 0)], batch_size=0
            )


class TestRegistrationAndValidation:
    def test_mismatched_dt_rejected(self):
        bat = BatchFluidSimulator()
        bat.add_experiment(fabric_link())
        with pytest.raises(ValidationError):
            bat.add_experiment(Link(capacity_gbps=25.0, rtt_s=0.032))

    def test_explicit_dt_allows_heterogeneous_rtt(self):
        bat = BatchFluidSimulator(dt_s=0.004)
        bat.add_experiment(fabric_link())
        bat.add_experiment(Link(capacity_gbps=25.0, rtt_s=0.032))
        assert bat.experiment_count == 2

    def test_dt_exceeding_rtt_rejected(self):
        bat = BatchFluidSimulator(dt_s=0.1)
        with pytest.raises(ValidationError):
            bat.add_experiment(fabric_link())  # rtt 16 ms < dt

    def test_flow_validation(self):
        bat = BatchFluidSimulator()
        e = bat.add_experiment(fabric_link())
        with pytest.raises(ValidationError):
            bat.add_flow(e, -1.0, 1e6)
        with pytest.raises(ValidationError):
            bat.add_flow(e, 0.0, 0.0)
        with pytest.raises(ValidationError):
            bat.add_flow(99, 0.0, 1e6)

    def test_add_flows_bulk_validation(self):
        bat = BatchFluidSimulator()
        e = bat.add_experiment(fabric_link())
        with pytest.raises(ValidationError):
            bat.add_flows(e, np.array([0.0, 1.0]), np.array([1e6]), np.array([0]))
        with pytest.raises(ValidationError):
            bat.add_flows(e, np.array([-1.0]), np.array([1e6]), np.array([0]))
        with pytest.raises(ValidationError):
            bat.add_flows(e, np.array([0.0]), np.array([0.0]), np.array([0]))
        bat.add_flows(e, np.array([0.0]), np.array([1e6]), np.array([3]))
        assert bat.flow_count(e) == 1

    def test_empty_batch_and_empty_experiments(self):
        assert BatchFluidSimulator().run() == []
        bat = BatchFluidSimulator()
        bat.add_experiment(fabric_link())
        e = bat.add_experiment(fabric_link())
        bat.add_flow(e, 0.0, 10e6)
        results = bat.run()
        assert results[0].n_flows == 0
        assert results[0].end_time_s == 0.0
        assert results[1].all_completed

    def test_add_clients_bulk_matches_add_client_loop(self):
        """The vectorized client registration is add_client exactly."""
        starts = np.array([0.0, 0.5, 1.25])
        cids = np.array([0, 1, 2])

        loop = BatchFluidSimulator()
        e = loop.add_experiment(fabric_link(), seed=4)
        for s, cid in zip(starts, cids):
            loop.add_client(e, float(s), 0.3e9, 4, int(cid))
        (a,) = loop.run()

        bulk = BatchFluidSimulator()
        e = bulk.add_experiment(fabric_link(), seed=4)
        bulk.add_clients(e, starts, 0.3e9, 4, cids)
        assert bulk.flow_count(e) == 12
        (b,) = bulk.run()
        assert_results_bit_identical(a, b, label="bulk clients")
        with pytest.raises(ValidationError):
            bulk.add_clients(e, starts, 0.3e9, 0, cids)

    def test_add_client_splits_evenly(self):
        bat = BatchFluidSimulator()
        e = bat.add_experiment(fabric_link())
        ids = bat.add_client(e, 0.0, 1e9, parallel_flows=4, client_id=3)
        assert len(ids) == 4
        assert bat.flow_count(e) == 4
        with pytest.raises(ValidationError):
            bat.add_client(e, 0.0, 1e9, parallel_flows=0, client_id=0)


class TestColumnarResults:
    def test_columnar_and_object_views_agree(self):
        (res,) = batched_run(
            [(fabric_link(), None, 1, [(0.0, 0.2e9, 0), (0.3, 0.2e9, 1)])]
        )
        flows = res.flows
        assert len(flows) == res.n_flows == 2
        for i, f in enumerate(flows):
            assert f.flow_id == int(res.flow_columns["flow_id"][i])
            assert f.end_s == float(res.flow_columns["end_s"][i])
        samples = res.link_samples
        assert len(samples) == res.n_link_samples
        assert sum(s.bytes_sent for s in samples) == pytest.approx(
            res.total_link_bytes()
        )

    def test_numpy_reductions_match_object_loops(self):
        (res,) = batched_run(
            [(fabric_link(), None, 2, [(0.0, 0.2e9, 0), (0.2, 0.2e9, 0), (1.0, 0.1e9, 1)])]
        )
        assert res.total_flow_bytes() == pytest.approx(
            sum(f.bytes_sent for f in res.flows)
        )
        assert res.flow_durations_s() == [
            f.duration_s for f in res.flows if f.completed
        ]
        old_times = {}
        for f in res.flows:
            old_times.setdefault(f.client_id, []).append(f)
        for cid, fl in old_times.items():
            if all(f.completed for f in fl):
                expect = max(f.end_s for f in fl) - min(f.start_s for f in fl)
                assert res.client_completion_times_s()[cid] == pytest.approx(expect)
