"""Per-chunk transfer timing models."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.streaming.transfer_models import (
    EffectiveRateTransfer,
    IdealTransfer,
    SssInflatedTransfer,
)


class TestIdeal:
    def test_paper_value(self):
        m = IdealTransfer(bandwidth_gbps=25.0)
        assert m.transfer_time_s(0.5e9) == pytest.approx(0.16)

    def test_rtt_adds_half(self):
        m = IdealTransfer(bandwidth_gbps=25.0, rtt_s=0.016)
        assert m.transfer_time_s(0.0) == pytest.approx(0.008)

    def test_rejects_negative_bytes(self):
        with pytest.raises(ValidationError):
            IdealTransfer(bandwidth_gbps=25.0).transfer_time_s(-1)


class TestEffective:
    def test_alpha_derates(self):
        m = EffectiveRateTransfer(bandwidth_gbps=25.0, alpha=0.5)
        assert m.transfer_time_s(0.5e9) == pytest.approx(0.32)

    def test_alpha_one_matches_ideal(self):
        ideal = IdealTransfer(bandwidth_gbps=25.0, rtt_s=0.016)
        eff = EffectiveRateTransfer(bandwidth_gbps=25.0, alpha=1.0, rtt_s=0.016)
        assert eff.transfer_time_s(1e9) == pytest.approx(ideal.transfer_time_s(1e9))

    def test_alpha_validation(self):
        with pytest.raises(ValidationError):
            EffectiveRateTransfer(bandwidth_gbps=25.0, alpha=1.2)


class TestSssInflated:
    def test_inflates_ideal_not_effective(self):
        m = SssInflatedTransfer(bandwidth_gbps=25.0, sss=10.0)
        assert m.transfer_time_s(0.5e9) == pytest.approx(1.6)

    def test_sss_one_is_ideal(self):
        m = SssInflatedTransfer(bandwidth_gbps=25.0, sss=1.0)
        assert m.transfer_time_s(0.5e9) == pytest.approx(0.16)

    def test_rejects_sub_unity_sss(self):
        with pytest.raises(ValidationError):
            SssInflatedTransfer(bandwidth_gbps=25.0, sss=0.5)


class TestOrdering:
    @given(nbytes=st.floats(min_value=1.0, max_value=1e12))
    def test_ideal_fastest_inflated_slowest(self, nbytes):
        ideal = IdealTransfer(25.0, rtt_s=0.016)
        eff = EffectiveRateTransfer(25.0, alpha=0.8, rtt_s=0.016)
        worst = SssInflatedTransfer(25.0, sss=5.0, rtt_s=0.016)
        t_i = ideal.transfer_time_s(nbytes)
        t_e = eff.transfer_time_s(nbytes)
        t_w = worst.transfer_time_s(nbytes)
        assert t_i <= t_e <= t_w

    @given(
        nbytes=st.floats(min_value=1.0, max_value=1e12),
        factor=st.floats(min_value=1.1, max_value=100.0),
    )
    def test_linear_in_bytes(self, nbytes, factor):
        m = EffectiveRateTransfer(25.0, alpha=0.7)
        assert m.transfer_time_s(nbytes * factor) == pytest.approx(
            m.transfer_time_s(nbytes) * factor, rel=1e-9
        )
