"""Integration: scaled-down Figure 2 reproduction.

Short-duration versions of the paper's congestion experiments that
assert the qualitative claims (the full-scale versions live in
``benchmarks/``).
"""

from __future__ import annotations

import pytest

from repro.core.sss import theoretical_transfer_time
from repro.iperfsim.runner import run_sweep
from repro.iperfsim.spec import ExperimentSpec, SpawnStrategy

# Batched-engine era: the scaled-down sweeps run in well under a
# second, so these ride the fast path (`-m "not slow"`) too.
DURATION = 5.0


@pytest.fixture(scope="module")
def batch_sweep():
    specs = [
        ExperimentSpec(concurrency=c, parallel_flows=4, duration_s=DURATION)
        for c in (1, 4, 6, 8)
    ]
    return run_sweep(specs, seeds=(0,))


@pytest.fixture(scope="module")
def scheduled_sweep():
    specs = [
        ExperimentSpec(
            concurrency=c, parallel_flows=4, duration_s=DURATION,
            strategy=SpawnStrategy.SCHEDULED,
        )
        for c in (1, 4, 6, 8)
    ]
    return run_sweep(specs, seeds=(0,))


class TestFigure2a:
    def test_low_load_suitable_for_real_time(self, batch_sweep):
        _, y = batch_sweep.curve(4)
        assert y[0] < 1.0  # regime 1

    def test_nonlinear_growth(self, batch_sweep):
        x, y = batch_sweep.curve(4)
        # Growth from 16 % to 128 % utilisation is super-linear: the
        # last step's slope exceeds the first step's slope.
        slope_lo = (y[1] - y[0]) / (x[1] - x[0])
        slope_hi = (y[-1] - y[-2]) / (x[-1] - x[-2])
        assert y[-1] > y[0] * 5
        assert slope_hi > slope_lo

    def test_severe_regime_exceeds_5s(self, batch_sweep):
        _, y = batch_sweep.curve(4)
        assert y[-1] > 5.0  # "exceed five seconds at high utilization"

    def test_order_of_magnitude_above_theoretical(self, batch_sweep):
        # "worst-case congestion can increase transfer times by over an
        #  order of magnitude"
        _, y = batch_sweep.curve(4)
        t_theo = float(theoretical_transfer_time(0.5, 25.0))
        assert y[-1] / t_theo > 10.0


class TestFigure2b:
    def test_scheduled_flat_and_fast(self, scheduled_sweep):
        _, y = scheduled_sweep.curve(4)
        # "the measured transfer time is 0.2s - within the error margin
        #  of the 0.16s theoretical value - and the maximum transfer time
        #  remains comfortably within the 1-second time budget"
        assert max(y) < 1.0
        assert max(y) / min(y) < 1.5  # flat across load

    def test_scheduled_near_theoretical(self, scheduled_sweep):
        _, y = scheduled_sweep.curve(4)
        t_theo = float(theoretical_transfer_time(0.5, 25.0))
        assert max(y) < 3 * t_theo


class TestBatchVsScheduled:
    def test_scheduled_dominates_at_high_load(self, batch_sweep, scheduled_sweep):
        _, yb = batch_sweep.curve(4)
        _, ys = scheduled_sweep.curve(4)
        assert ys[-1] < yb[-1] / 5
