"""Streaming vs file-based comparison (Figure 4 logic, scaled down)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.storage.dtn import DtnModel
from repro.streaming.comparison import (
    compare_methods,
    default_dtn,
    default_streaming_network,
)
from repro.streaming.transfer_models import EffectiveRateTransfer
from repro.workloads.instrument import FrameSpec
from repro.workloads.scan import ScanSpec


def scan(n_frames=48, interval=0.033):
    return ScanSpec(
        frame=FrameSpec(2048, 2048, 2), n_frames=n_frames, frame_interval_s=interval
    )


@pytest.fixture
def comparison(source_fs, dest_fs):
    return compare_methods(
        scan(),
        file_counts=(1, 4, 48),
        source=source_fs,
        destination=dest_fs,
        dtn=DtnModel(wan_bandwidth_gbps=25.0, alpha=0.5, per_file_setup_s=0.5),
        streaming_network=default_streaming_network(),
        keep_details=True,
    )


class TestOutcomes:
    def test_all_methods_present(self, comparison):
        methods = {(o.method, o.n_files) for o in comparison.outcomes}
        assert ("streaming", None) in methods
        assert ("file", 1) in methods and ("file", 48) in methods

    def test_streaming_fastest_at_high_rate(self, comparison):
        stream_t = comparison.streaming_completion_s
        for o in comparison.outcomes:
            if o.method == "file":
                assert stream_t < o.completion_s

    def test_small_files_worst(self, comparison):
        assert comparison.worst_file_based().n_files == 48

    def test_reduction_percentage_positive(self, comparison):
        assert comparison.reduction_vs_file_pct(48) > 50.0

    def test_best_file_based(self, comparison):
        best = comparison.best_file_based()
        assert best.completion_s == min(
            o.completion_s for o in comparison.outcomes if o.method == "file"
        )

    def test_details_kept(self, comparison):
        assert comparison.streaming_detail is not None
        assert set(comparison.file_details) == {1, 4, 48}

    def test_outcome_lookup_missing(self, comparison):
        with pytest.raises(ValidationError):
            comparison.outcome("file", 999)

    def test_transfer_overhead(self, comparison):
        for o in comparison.outcomes:
            assert o.transfer_overhead_s == pytest.approx(
                o.completion_s - o.generation_end_s
            )


class TestLowRate:
    def test_generation_bound_at_low_rate(self, source_fs, dest_fs):
        comp = compare_methods(
            scan(interval=1.0),
            file_counts=(1, 4),
            source=source_fs,
            destination=dest_fs,
            dtn=DtnModel(wan_bandwidth_gbps=25.0, alpha=0.5, per_file_setup_s=0.5),
            streaming_network=default_streaming_network(),
        )
        gen = comp.scan.generation_time_s
        # File-based is competitive: within 10 % of generation time.
        assert comp.outcome("file", 1).completion_s < gen * 1.10
        assert comp.streaming_completion_s < gen * 1.02


class TestDefaults:
    def test_default_dtn_is_half_link(self):
        assert default_dtn(25.0).alpha == 0.5

    def test_default_streaming_is_faster_than_file_tool(self):
        s = default_streaming_network(25.0)
        d = default_dtn(25.0)
        assert s.rate_bytes_per_s > d.wan_rate_bytes_per_s

    def test_empty_file_counts_rejected(self):
        with pytest.raises(ValidationError):
            compare_methods(scan(), file_counts=())
