"""Performance-variability Monte Carlo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model import t_pct
from repro.errors import ValidationError
from repro.measurement.variability import (
    Fixed,
    TruncatedNormal,
    Uniform,
    monte_carlo_tpct,
)


class TestDistributions:
    def test_fixed(self):
        rng = np.random.default_rng(0)
        np.testing.assert_allclose(Fixed(0.8).sample(rng, 5), 0.8)

    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        s = Uniform(0.3, 0.9).sample(rng, 10_000)
        assert s.min() >= 0.3 and s.max() <= 0.9
        assert abs(s.mean() - 0.6) < 0.02

    def test_uniform_validation(self):
        with pytest.raises(ValidationError):
            Uniform(0.9, 0.3)

    def test_truncated_normal_clipped(self):
        rng = np.random.default_rng(0)
        s = TruncatedNormal(mean=0.8, sd=0.5, low=0.1, high=1.0).sample(rng, 10_000)
        assert s.min() >= 0.1 and s.max() <= 1.0

    def test_truncated_normal_validation(self):
        with pytest.raises(ValidationError):
            TruncatedNormal(mean=0.5, sd=0.0, low=0.1, high=1.0)
        with pytest.raises(ValidationError):
            TruncatedNormal(mean=0.5, sd=0.1, low=1.0, high=0.1)


class TestMonteCarlo:
    def test_degenerate_matches_closed_form(self, params):
        res = monte_carlo_tpct(params, n=100, seed=1)
        expected = t_pct(
            params.s_unit_gb,
            params.complexity_flop_per_gb,
            params.r_local_tflops,
            params.bandwidth_gbps,
            alpha=params.alpha,
            r=params.r,
            theta=params.theta,
        )
        np.testing.assert_allclose(res.samples_s, expected)
        assert res.summary.maximum == pytest.approx(expected)

    def test_variability_widens_distribution(self, params):
        res = monte_carlo_tpct(
            params,
            alpha_dist=Uniform(0.3, 1.0),
            theta_dist=Uniform(1.0, 6.0),
            n=20_000,
            seed=2,
        )
        assert res.summary.maximum > res.summary.p50 > res.summary.p50 * 0

    def test_deadline_probability(self, params):
        # Deadline at the median: ~50 % success under a symmetric-ish mix.
        base = monte_carlo_tpct(
            params, alpha_dist=Uniform(0.5, 1.0), n=20_000, seed=3
        )
        res = monte_carlo_tpct(
            params,
            alpha_dist=Uniform(0.5, 1.0),
            deadline_s=base.summary.p50,
            n=20_000,
            seed=3,
        )
        assert res.p_meet_deadline == pytest.approx(0.5, abs=0.05)

    def test_impossible_deadline(self, params):
        res = monte_carlo_tpct(params, deadline_s=1e-9, n=100, seed=0)
        assert res.p_meet_deadline == 0.0

    def test_generous_deadline(self, params):
        res = monte_carlo_tpct(params, deadline_s=1e9, n=100, seed=0)
        assert res.p_meet_deadline == 1.0

    def test_worse_alpha_raises_p99(self, params):
        good = monte_carlo_tpct(
            params, alpha_dist=Uniform(0.8, 1.0), n=20_000, seed=4
        )
        bad = monte_carlo_tpct(
            params, alpha_dist=Uniform(0.1, 0.3), n=20_000, seed=4
        )
        assert bad.p99 > good.p99

    def test_reproducible(self, params):
        a = monte_carlo_tpct(params, alpha_dist=Uniform(0.3, 1.0), n=1000, seed=7)
        b = monte_carlo_tpct(params, alpha_dist=Uniform(0.3, 1.0), n=1000, seed=7)
        np.testing.assert_array_equal(a.samples_s, b.samples_s)

    def test_domain_enforcement(self, params):
        with pytest.raises(ValidationError):
            monte_carlo_tpct(
                params, alpha_dist=Uniform(0.5, 2.0), n=100, seed=0
            )
        with pytest.raises(ValidationError):
            monte_carlo_tpct(
                params, theta_dist=Uniform(0.1, 0.9), n=100, seed=0
            )

    def test_n_validation(self, params):
        with pytest.raises(ValidationError):
            monte_carlo_tpct(params, n=0)
