"""Analytic queueing extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.queueing import (
    AnalyticCurve,
    analytic_worst_fct_s,
    mg1_wait_s,
    overload_backlog_s,
)
from repro.errors import ValidationError


class TestMg1:
    def test_zero_load_zero_wait(self):
        assert mg1_wait_s(0.0, 1.0) == 0.0

    def test_known_value(self):
        # rho=0.5, exponential service S=2: W = 0.5/0.5 * 1 * 2 = 2.
        assert mg1_wait_s(0.5, 2.0, service_cv2=1.0) == pytest.approx(2.0)

    def test_deterministic_service_halves_wait(self):
        w_exp = mg1_wait_s(0.5, 2.0, service_cv2=1.0)
        w_det = mg1_wait_s(0.5, 2.0, service_cv2=0.0)
        assert w_det == pytest.approx(w_exp / 2)

    def test_saturation_is_infinite(self):
        assert mg1_wait_s(1.0, 1.0) == np.inf
        assert mg1_wait_s(1.5, 1.0) == np.inf

    def test_monotone_in_rho(self):
        rho = np.array([0.1, 0.5, 0.9, 0.99])
        w = mg1_wait_s(rho, 1.0)
        assert np.all(np.diff(w) > 0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            mg1_wait_s(0.5, 1.0, service_cv2=-1.0)


class TestBacklog:
    def test_stable_no_backlog(self):
        assert overload_backlog_s(0.9, 10.0) == 0.0

    def test_overload_linear(self):
        # 28 % overload over 10 s -> 2.8 s of drain.
        assert overload_backlog_s(1.28, 10.0) == pytest.approx(2.8)

    def test_vectorised(self):
        out = overload_backlog_s(np.array([0.5, 1.0, 2.0]), 10.0)
        np.testing.assert_allclose(out, [0.0, 0.0, 10.0])


class TestAnalyticCurve:
    def _curve(self):
        # The paper's working point: 0.5 GB clients, 25 Gbps link; the
        # batch at utilisation u carries u * capacity * 1 s of bytes, but
        # the curve models a fixed representative batch of 2 GB (C=4).
        return AnalyticCurve(batch_bytes=2e9, capacity_gbps=25.0)

    def test_hockey_stick_shape(self):
        curve = self._curve()
        u = [0.16, 0.48, 0.8, 0.96, 1.28]
        t = [curve.t_worst_at(x) for x in u]
        assert all(b >= a for a, b in zip(t, t[1:]))
        # Knee: the overloaded end dwarfs the light end.
        assert t[-1] > 4 * t[0]

    def test_light_load_near_drain_time(self):
        curve = self._curve()
        drain = 2e9 / (25e9 / 8 * 0.85)
        assert curve.t_worst_at(0.1) < 2 * drain + 0.1

    def test_sss_consistency(self):
        curve = self._curve()
        t_theo = 2e9 / (25e9 / 8)
        assert curve.sss_at(0.96) == pytest.approx(
            curve.t_worst_at(0.96) / t_theo
        )

    def test_mirrors_sss_curve_interface(self):
        curve = self._curve()
        assert curve.worst_case_for_unit(0.64) == curve.t_worst_at(0.64)

    def test_qualitative_match_with_simulation(self):
        """The analytic curve and the fluid simulator agree on regime
        ordering at the paper's working points."""
        from repro.iperfsim.runner import run_experiment
        from repro.iperfsim.spec import ExperimentSpec

        curve = AnalyticCurve(batch_bytes=4 * 0.5e9, capacity_gbps=25.0)
        sim_64 = run_experiment(
            ExperimentSpec(concurrency=4, parallel_flows=4, duration_s=5.0),
            seed=0,
        ).max_transfer_time_s
        sim_128 = run_experiment(
            ExperimentSpec(concurrency=8, parallel_flows=4, duration_s=5.0),
            seed=0,
        ).max_transfer_time_s
        ana_64 = curve.t_worst_at(0.64)
        ana_128 = AnalyticCurve(
            batch_bytes=8 * 0.5e9, capacity_gbps=25.0, window_s=5.0
        ).t_worst_at(1.28)
        # Same ordering and same order of magnitude.
        assert (sim_128 > sim_64) and (ana_128 > ana_64)
        assert 0.2 < ana_64 / sim_64 < 5.0
        assert 0.2 < ana_128 / sim_128 < 5.0

    def test_works_with_tier_machinery(self):
        from repro.analysis.tiers import assess_workflow
        from repro.core.decision import Tier
        from repro.workloads.lcls import coherent_scattering

        curve_like = AnalyticCurve(batch_bytes=2e9, capacity_gbps=25.0)
        # assess_workflow only needs worst_case_for_unit + bandwidth; an
        # AnalyticCurve lacks `bandwidth_gbps` attr name parity, so use
        # the raw interface instead.
        t = curve_like.worst_case_for_unit(0.64)
        w = coherent_scattering()
        budget = 10.0 - t
        assert budget > 0
        assert w.required_remote_tflops(10.0, t) > 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            AnalyticCurve(batch_bytes=0.0, capacity_gbps=25.0)
        with pytest.raises(ValidationError):
            analytic_worst_fct_s(0.5, 1e9, 25.0, tcp_efficiency=1.5)
