"""SSS curves and the measurement methodology."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sss import SSSMeasurement
from repro.errors import MeasurementError, ValidationError
from repro.iperfsim.runner import run_sweep
from repro.iperfsim.spec import ExperimentSpec
from repro.measurement.congestion import (
    SssCurve,
    curve_from_sweep,
    measure_sss_curve,
)


def make_curve():
    points = [
        (0.16, 0.3),
        (0.64, 1.5),
        (0.96, 6.0),
        (1.28, 12.0),
    ]
    return SssCurve(
        size_gb=0.5,
        bandwidth_gbps=25.0,
        measurements=[
            SSSMeasurement(0.5, 25.0, t, u) for u, t in points
        ],
    )


class TestCurveInterpolation:
    def test_measured_points_exact(self):
        curve = make_curve()
        assert curve.t_worst_at(0.64) == pytest.approx(1.5)

    def test_interpolates_between(self):
        curve = make_curve()
        mid = curve.t_worst_at(0.80)
        assert 1.5 < mid < 6.0

    def test_clamps_at_ends(self):
        curve = make_curve()
        assert curve.t_worst_at(0.0) == pytest.approx(0.3)
        assert curve.t_worst_at(5.0) == pytest.approx(12.0)

    def test_sss_at(self):
        curve = make_curve()
        # t_theoretical = 0.16 s.
        assert curve.sss_at(0.96) == pytest.approx(6.0 / 0.16)

    def test_sorted_by_utilization(self):
        curve = make_curve()
        assert list(curve.utilizations) == sorted(curve.utilizations)

    def test_negative_utilization_rejected(self):
        with pytest.raises(ValidationError):
            make_curve().t_worst_at(-0.1)

    def test_empty_curve_raises(self):
        empty = SssCurve(size_gb=0.5, bandwidth_gbps=25.0)
        with pytest.raises(MeasurementError):
            empty.t_worst_at(0.5)


class TestVolumeScaling:
    def test_worst_case_for_volume_scales_linearly(self):
        curve = make_curve()
        t1 = curve.worst_case_for_volume(0.5, 0.64)
        t4 = curve.worst_case_for_volume(2.0, 0.64)
        assert t4 == pytest.approx(4 * t1)

    def test_worst_case_for_unit_reads_curve_directly(self):
        curve = make_curve()
        assert curve.worst_case_for_unit(0.96) == pytest.approx(6.0)

    def test_zero_volume_rejected(self):
        with pytest.raises(ValidationError):
            make_curve().worst_case_for_volume(0.0, 0.5)


class TestFromSweep:
    def _sweep(self):
        specs = [
            ExperimentSpec(concurrency=c, parallel_flows=2, duration_s=3.0)
            for c in (1, 4)
        ]
        return run_sweep(specs, seeds=(0,))

    def test_curve_built_from_results(self):
        sweep = self._sweep()
        curve = curve_from_sweep(sweep)
        assert len(curve.measurements) == 2
        assert curve.size_gb == 0.5

    def test_monotone_t_worst(self):
        curve = curve_from_sweep(self._sweep())
        assert curve.t_worst_values[1] > curve.t_worst_values[0]

    def test_mixed_sizes_rejected(self):
        specs = [
            ExperimentSpec(concurrency=1, parallel_flows=2,
                           transfer_size_gb=0.5, duration_s=2.0),
            ExperimentSpec(concurrency=1, parallel_flows=2,
                           transfer_size_gb=1.0, duration_s=2.0),
        ]
        sweep = run_sweep(specs, seeds=(0,))
        with pytest.raises(ValidationError):
            curve_from_sweep(sweep)


class TestMeasureEndToEnd:
    def test_small_measurement_run(self):
        curve = measure_sss_curve(
            concurrencies=(1, 6), duration_s=3.0, seeds=(0,)
        )
        assert curve.sss_at(curve.utilizations[0]) >= 1.0
        # Congestion must raise the worst case.
        assert curve.t_worst_values[1] > curve.t_worst_values[0]

    def test_rejects_empty_concurrency(self):
        with pytest.raises(ValidationError):
            measure_sss_curve(concurrencies=())
