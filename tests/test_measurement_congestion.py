"""SSS curves and the measurement methodology."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.sss import SSSMeasurement
from repro.errors import MeasurementError, ValidationError
from repro.iperfsim.runner import run_sweep
from repro.iperfsim.spec import ExperimentSpec
from repro.measurement.congestion import (
    SssCurve,
    curve_from_sweep,
    measure_sss_curve,
)


def make_curve():
    points = [
        (0.16, 0.3),
        (0.64, 1.5),
        (0.96, 6.0),
        (1.28, 12.0),
    ]
    return SssCurve(
        size_gb=0.5,
        bandwidth_gbps=25.0,
        measurements=[
            SSSMeasurement(0.5, 25.0, t, u) for u, t in points
        ],
    )


class TestCurveInterpolation:
    def test_measured_points_exact(self):
        curve = make_curve()
        assert curve.t_worst_at(0.64) == pytest.approx(1.5)

    def test_interpolates_between(self):
        curve = make_curve()
        mid = curve.t_worst_at(0.80)
        assert 1.5 < mid < 6.0

    def test_clamps_at_ends_with_warning(self):
        """Queries beyond the measured range clamp to the boundary value
        and warn — never a silent extrapolation."""
        curve = make_curve()
        with pytest.warns(UserWarning, match="clamping"):
            assert curve.t_worst_at(0.0) == pytest.approx(0.3)
        with pytest.warns(UserWarning, match="clamping"):
            assert curve.t_worst_at(5.0) == pytest.approx(12.0)
        with pytest.warns(UserWarning, match="clamping"):
            assert curve.sss_at(5.0) == pytest.approx(12.0 / 0.16)

    def test_in_range_queries_do_not_warn(self, recwarn):
        curve = make_curve()
        curve.t_worst_at(0.16)
        curve.t_worst_at(1.28)
        curve.sss_at(0.8)
        assert not [w for w in recwarn if issubclass(w.category, UserWarning)]

    def test_sss_at(self):
        curve = make_curve()
        # t_theoretical = 0.16 s.
        assert curve.sss_at(0.96) == pytest.approx(6.0 / 0.16)

    def test_sorted_by_utilization(self):
        curve = make_curve()
        assert list(curve.utilizations) == sorted(curve.utilizations)

    def test_negative_utilization_rejected(self):
        with pytest.raises(ValidationError):
            make_curve().t_worst_at(-0.1)

    def test_empty_curve_raises(self):
        empty = SssCurve(size_gb=0.5, bandwidth_gbps=25.0)
        with pytest.raises(MeasurementError):
            empty.t_worst_at(0.5)


class TestVolumeScaling:
    def test_worst_case_for_volume_scales_linearly(self):
        curve = make_curve()
        t1 = curve.worst_case_for_volume(0.5, 0.64)
        t4 = curve.worst_case_for_volume(2.0, 0.64)
        assert t4 == pytest.approx(4 * t1)

    def test_worst_case_for_unit_reads_curve_directly(self):
        curve = make_curve()
        assert curve.worst_case_for_unit(0.96) == pytest.approx(6.0)

    def test_zero_volume_rejected(self):
        with pytest.raises(ValidationError):
            make_curve().worst_case_for_volume(0.0, 0.5)


class TestSerialization:
    def test_json_roundtrip_lossless(self):
        curve = make_curve()
        clone = SssCurve.from_json(curve.to_json())
        assert clone.size_gb == curve.size_gb
        assert clone.bandwidth_gbps == curve.bandwidth_gbps
        np.testing.assert_array_equal(clone.utilizations, curve.utilizations)
        np.testing.assert_array_equal(
            clone.t_worst_values, curve.t_worst_values
        )
        np.testing.assert_array_equal(clone.sss_values, curve.sss_values)
        # Idempotent: serialising the clone reproduces the artifact.
        assert clone.to_json() == curve.to_json()

    def test_save_load_roundtrip(self, tmp_path):
        curve = make_curve()
        path = curve.save(tmp_path / "nested" / "curve.json")
        assert path.exists()
        clone = SssCurve.load(path)
        np.testing.assert_array_equal(clone.sss_values, curve.sss_values)

    def test_load_missing_file_names_the_fix(self, tmp_path):
        with pytest.raises(ValidationError, match="repro sss --out"):
            SssCurve.load(tmp_path / "nope.json")

    def test_invalid_json_rejected(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            SssCurve.from_json("{not json")

    def test_non_object_payload_rejected(self):
        with pytest.raises(ValidationError, match="JSON object"):
            SssCurve.from_json("[1, 2, 3]")

    def test_wrong_version_rejected(self):
        text = make_curve().to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(ValidationError, match="version"):
            SssCurve.from_json(text)

    def test_missing_keys_named(self):
        with pytest.raises(ValidationError, match="measurements"):
            SssCurve.from_json('{"version": 1, "size_gb": 0.5}')

    def test_non_numeric_measurement_value_rejected(self):
        text = make_curve().to_json().replace('"t_worst_s": 0.3', '"t_worst_s": "0.3s"')
        with pytest.raises(ValidationError, match="non-numeric"):
            SssCurve.from_json(text)
        text = make_curve().to_json().replace('"t_worst_s": 0.3', '"t_worst_s": null')
        with pytest.raises(ValidationError, match="non-numeric"):
            SssCurve.from_json(text)

    def test_unsorted_artifact_loads_sorted(self):
        """Measurement order in the artifact is irrelevant: the curve
        constructor sorts by utilisation, so interpolation stays exact."""
        curve = make_curve()
        payload = json.loads(curve.to_json())
        payload["measurements"].reverse()
        clone = SssCurve.from_json(json.dumps(payload))
        np.testing.assert_array_equal(clone.utilizations, curve.utilizations)
        assert clone.t_worst_at(0.8) == curve.t_worst_at(0.8)

    def test_malformed_measurement_named(self):
        with pytest.raises(ValidationError, match="measurement #0"):
            SssCurve.from_json(
                '{"version": 1, "size_gb": 0.5, "bandwidth_gbps": 25.0, '
                '"measurements": [{"t_worst_s": 1.0}]}'
            )

    def test_loaded_curve_revalidates_measurements(self):
        """A tampered artifact (negative worst case) fails the same
        SSSMeasurement validation as a live measurement."""
        text = make_curve().to_json().replace(
            '"t_worst_s": 0.3', '"t_worst_s": -0.3'
        )
        with pytest.raises(ValidationError):
            SssCurve.from_json(text)


class TestFromSweep:
    def _sweep(self):
        specs = [
            ExperimentSpec(concurrency=c, parallel_flows=2, duration_s=3.0)
            for c in (1, 4)
        ]
        return run_sweep(specs, seeds=(0,))

    def test_curve_built_from_results(self):
        sweep = self._sweep()
        curve = curve_from_sweep(sweep)
        assert len(curve.measurements) == 2
        assert curve.size_gb == 0.5

    def test_monotone_t_worst(self):
        curve = curve_from_sweep(self._sweep())
        assert curve.t_worst_values[1] > curve.t_worst_values[0]

    def test_mixed_sizes_rejected(self):
        specs = [
            ExperimentSpec(concurrency=1, parallel_flows=2,
                           transfer_size_gb=0.5, duration_s=2.0),
            ExperimentSpec(concurrency=1, parallel_flows=2,
                           transfer_size_gb=1.0, duration_s=2.0),
        ]
        sweep = run_sweep(specs, seeds=(0,))
        with pytest.raises(ValidationError):
            curve_from_sweep(sweep)


class TestMeasureEndToEnd:
    def test_small_measurement_run(self):
        curve = measure_sss_curve(
            concurrencies=(1, 6), duration_s=3.0, seeds=(0,)
        )
        assert curve.sss_at(curve.utilizations[0]) >= 1.0
        # Congestion must raise the worst case.
        assert curve.t_worst_values[1] > curve.t_worst_values[0]

    def test_rejects_empty_concurrency(self):
        with pytest.raises(ValidationError):
            measure_sss_curve(concurrencies=())

    def test_multi_hop_curve_normalises_to_route_bottleneck(self):
        from repro.simnet.topology import cross_facility_testbed

        curve = measure_sss_curve(
            concurrencies=(1, 6), duration_s=2.0, seeds=(0,),
            topology=cross_facility_testbed(), route=("edge", "hpc"),
        )
        assert curve.bandwidth_gbps == 25.0  # the shared-WAN bottleneck
        assert curve.t_worst_values[1] > curve.t_worst_values[0]
        assert curve.sss_at(curve.utilizations[0]) >= 1.0

    def test_link_and_topology_are_exclusive(self):
        from repro.simnet.link import fabric_link
        from repro.simnet.topology import cross_facility_testbed

        with pytest.raises(ValidationError, match="not both"):
            measure_sss_curve(
                concurrencies=(1,), duration_s=2.0,
                link=fabric_link(),
                topology=cross_facility_testbed(), route=("edge", "hpc"),
            )

    def test_wan_fault_degrades_the_multi_hop_curve(self):
        from repro.simnet.faults import brownout_schedule
        from repro.simnet.topology import cross_facility_testbed

        base = measure_sss_curve(
            concurrencies=(2,), duration_s=2.0, seeds=(0,),
            topology=cross_facility_testbed(), route=("edge", "hpc"),
        )
        faulted = measure_sss_curve(
            concurrencies=(2,), duration_s=2.0, seeds=(0,),
            topology=cross_facility_testbed(), route=("edge", "hpc"),
            faults=brownout_schedule(1.0, 0.0, start_s=0.1),
            fault_link="dtn-wan",
        )
        assert faulted.t_worst_values[0] > base.t_worst_values[0]
