"""Streaming pipeline: DES behaviour and analytic cross-check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.streaming.pipeline import (
    StreamingPipeline,
    analytic_streaming_completion_s,
)
from repro.streaming.transfer_models import EffectiveRateTransfer
from repro.workloads.instrument import FrameSpec
from repro.workloads.scan import ScanSpec


def scan(n_frames=24, interval=0.033):
    return ScanSpec(
        frame=FrameSpec(2048, 2048, 2), n_frames=n_frames, frame_interval_s=interval
    )


def fast_net():
    return EffectiveRateTransfer(bandwidth_gbps=25.0, alpha=0.8, rtt_s=0.016)


def slow_net():
    # 1 Gbps: slower than the generation rate of the fast scan.
    return EffectiveRateTransfer(bandwidth_gbps=1.0, alpha=0.8, rtt_s=0.016)


class TestFastNetwork:
    def test_completion_tracks_generation(self):
        s = scan()
        res = StreamingPipeline(s, fast_net()).run()
        # Network keeps up: completion is generation end + one frame push.
        last_frame_push = fast_net().transfer_time_s(s.frame_bytes)
        assert res.completion_s == pytest.approx(
            s.generation_time_s + last_frame_push, rel=1e-6
        )

    def test_no_stall_with_fast_network(self):
        res = StreamingPipeline(scan(), fast_net(), buffer_frames=4).run()
        assert res.producer_stall_s == 0.0

    def test_all_frames_delivered_in_order_times(self):
        res = StreamingPipeline(scan(), fast_net()).run()
        assert np.all(np.diff(res.frame_delivered_s) > 0)
        assert np.all(res.frame_delivered_s > res.frame_generated_s)

    def test_overlap_efficiency_near_one(self):
        res = StreamingPipeline(scan(), fast_net()).run()
        assert res.overlap_efficiency == pytest.approx(1.0, rel=0.05)


class TestSlowNetwork:
    def test_completion_bound_by_network(self):
        s = scan()
        res = StreamingPipeline(s, slow_net()).run()
        per_frame = slow_net().transfer_time_s(s.frame_bytes)
        assert res.completion_s == pytest.approx(
            s.n_frames * per_frame + s.frame_interval_s, rel=0.05
        )
        assert res.overlap_efficiency > 1.5

    def test_bounded_buffer_causes_stall(self):
        res = StreamingPipeline(scan(), slow_net(), buffer_frames=2).run()
        assert res.producer_stall_s > 0.0

    def test_unbounded_buffer_never_stalls(self):
        res = StreamingPipeline(scan(), slow_net()).run()
        assert res.producer_stall_s == 0.0

    def test_backpressure_preserves_delivery(self):
        bounded = StreamingPipeline(scan(), slow_net(), buffer_frames=2).run()
        unbounded = StreamingPipeline(scan(), slow_net()).run()
        # Same total work, same completion (sender is the bottleneck).
        assert bounded.completion_s == pytest.approx(
            unbounded.completion_s, rel=1e-6
        )


class TestAnalyticCrossCheck:
    @pytest.mark.parametrize("interval", [0.01, 0.033, 0.33])
    @pytest.mark.parametrize("net", [fast_net, slow_net])
    def test_des_matches_recurrence(self, interval, net):
        s = scan(n_frames=30, interval=interval)
        res = StreamingPipeline(s, net()).run()
        assert res.completion_s == pytest.approx(
            analytic_streaming_completion_s(s, net()), rel=1e-9
        )


class TestCustomTrace:
    def test_trace_overrides_cadence(self):
        s = scan(n_frames=3)
        trace = [0.0, 0.0, 10.0]
        res = StreamingPipeline(s, fast_net(), frame_times_s=trace).run()
        assert res.generation_end_s == pytest.approx(10.0)

    def test_trace_length_mismatch(self):
        with pytest.raises(ValidationError):
            StreamingPipeline(scan(n_frames=3), fast_net(), frame_times_s=[0.0])

    def test_decreasing_trace_rejected(self):
        with pytest.raises(ValidationError):
            StreamingPipeline(
                scan(n_frames=3), fast_net(), frame_times_s=[2.0, 1.0, 3.0]
            )

    def test_buffer_validation(self):
        with pytest.raises(ValidationError):
            StreamingPipeline(scan(), fast_net(), buffer_frames=0)


class TestLatencies:
    def test_frame_latencies_positive(self):
        res = StreamingPipeline(scan(), fast_net()).run()
        lats = res.frame_latencies_s()
        assert np.all(lats > 0)
        # With a keeping-up network every frame's latency is ~one push.
        per_frame = fast_net().transfer_time_s(scan().frame_bytes)
        np.testing.assert_allclose(lats, per_frame, rtol=1e-6)
