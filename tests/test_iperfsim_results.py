"""Result containers: curves and pooling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.iperfsim.results import ExperimentResult, SweepResult
from repro.iperfsim.spec import ExperimentSpec


def result(concurrency=1, p=2, times=None):
    times = times if times is not None else {0: 0.3, 1: 0.5}
    spec = ExperimentSpec(concurrency=concurrency, parallel_flows=p)
    return ExperimentResult(
        spec=spec,
        client_times_s=times,
        achieved_utilization=0.5,
        offered_utilization=spec.offered_utilization(),
    )


class TestExperimentResult:
    def test_max(self):
        assert result().max_transfer_time_s == pytest.approx(0.5)

    def test_transfer_times_sorted_by_client(self):
        r = result(times={3: 0.9, 1: 0.2})
        np.testing.assert_allclose(r.transfer_times, [0.2, 0.9])

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            result(times={}).max_transfer_time_s

    def test_percentile(self):
        r = result(times={i: float(i) for i in range(1, 101)})
        assert r.percentile(50) == pytest.approx(50.5)


class TestSweepResult:
    def _sweep(self):
        sw = SweepResult()
        for p in (2, 4):
            for c in (2, 1):
                sw.experiments.append(
                    result(concurrency=c, p=p, times={0: 0.1 * c * p})
                )
        return sw

    def test_by_parallel_flows_sorted(self):
        sw = self._sweep()
        exps = sw.by_parallel_flows(2)
        assert [e.spec.concurrency for e in exps] == [1, 2]

    def test_parallel_flow_values(self):
        assert self._sweep().parallel_flow_values() == [2, 4]

    def test_curve_axes(self):
        x, y = self._sweep().curve(4)
        assert x.shape == y.shape == (2,)
        assert list(x) == sorted(x)

    def test_all_transfer_times_concatenates(self):
        assert self._sweep().all_transfer_times().size == 4

    def test_empty_sweep(self):
        assert SweepResult().all_transfer_times().size == 0
