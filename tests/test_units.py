"""Unit constants and conversion helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units
from repro.errors import UnitError


class TestConstants:
    def test_decimal_byte_multiples(self):
        assert units.GB == 1e9
        assert units.TB == 1e12
        assert units.PB == 1e15

    def test_binary_multiples_differ_from_decimal(self):
        assert units.GIB > units.GB
        assert units.GIB == 1024**3

    def test_day_length(self):
        assert units.SECONDS_PER_DAY == 24 * 3600


class TestBandwidthConversions:
    def test_25_gbps_is_3_125_gbytes(self):
        assert units.gbps_to_gbytes_per_s(25.0) == pytest.approx(3.125)

    def test_round_trip_gbps(self):
        assert units.gbytes_per_s_to_gbps(
            units.gbps_to_gbytes_per_s(25.0)
        ) == pytest.approx(25.0)

    def test_bytes_per_s(self):
        assert units.gbps_to_bytes_per_s(8.0) == pytest.approx(1e9)
        assert units.bytes_per_s_to_gbps(1e9) == pytest.approx(8.0)

    def test_vectorised(self):
        arr = np.array([8.0, 16.0, 25.0])
        out = units.gbps_to_gbytes_per_s(arr)
        np.testing.assert_allclose(out, [1.0, 2.0, 3.125])


class TestSizeConversions:
    def test_gb_round_trip(self):
        assert units.bytes_to_gb(units.gb_to_bytes(12.6)) == pytest.approx(12.6)

    def test_mb_round_trip(self):
        assert units.bytes_to_mb(units.mb_to_bytes(0.5)) == pytest.approx(0.5)

    def test_scan_volume_matches_paper(self):
        # 1440 frames of 2048x2048 uint16 ~ 12.1 GB (paper: "approximately 12.6 GB")
        nbytes = 1440 * 2048 * 2048 * 2
        assert units.bytes_to_gb(nbytes) == pytest.approx(12.0795, rel=1e-3)


class TestScorecardUnits:
    def test_petabyte_per_day_reference(self):
        # "Transferring a Petabyte in a Day" needs ~92.6 Gbps sustained.
        gbps = units.tb_per_day_to_gbps(1000.0)
        assert gbps == pytest.approx(92.59, rel=1e-3)

    def test_tb_per_day_round_trip(self):
        assert units.gbps_to_tb_per_day(
            units.tb_per_day_to_gbps(123.0)
        ) == pytest.approx(123.0)


class TestFlopsConversions:
    def test_tflops(self):
        assert units.tflops_to_flops(34.0) == pytest.approx(3.4e13)
        assert units.flops_to_tflops(2e13) == pytest.approx(20.0)


class TestTimeConversions:
    def test_ms_round_trip(self):
        assert units.ms_to_seconds(units.seconds_to_ms(0.016)) == pytest.approx(0.016)


class TestValidators:
    def test_ensure_positive_rejects_zero(self):
        with pytest.raises(UnitError):
            units.ensure_positive(0.0, "x")

    def test_ensure_positive_rejects_negative_array_element(self):
        with pytest.raises(UnitError):
            units.ensure_positive(np.array([1.0, -2.0]), "x")

    def test_ensure_positive_rejects_nan(self):
        with pytest.raises(UnitError):
            units.ensure_positive(float("nan"), "x")

    def test_ensure_positive_rejects_inf(self):
        with pytest.raises(UnitError):
            units.ensure_positive(float("inf"), "x")

    def test_ensure_non_negative_accepts_zero(self):
        units.ensure_non_negative(0.0, "x")

    def test_ensure_non_negative_rejects_negative(self):
        with pytest.raises(UnitError):
            units.ensure_non_negative(-1e-9, "x")

    def test_ensure_fraction_bounds(self):
        units.ensure_fraction(1.0, "x")
        units.ensure_fraction(1e-9, "x")
        with pytest.raises(UnitError):
            units.ensure_fraction(0.0, "x")
        with pytest.raises(UnitError):
            units.ensure_fraction(1.0 + 1e-9, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(UnitError, match="alpha"):
            units.ensure_fraction(2.0, "alpha")


class TestConversionProperties:
    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_gbps_round_trip_property(self, gbps):
        assert units.gbytes_per_s_to_gbps(
            units.gbps_to_gbytes_per_s(gbps)
        ) == pytest.approx(gbps, rel=1e-12)

    @given(st.floats(min_value=1e-6, max_value=1e9))
    def test_gb_bytes_round_trip_property(self, gb):
        assert units.bytes_to_gb(units.gb_to_bytes(gb)) == pytest.approx(
            gb, rel=1e-12
        )

    @given(st.floats(min_value=1e-3, max_value=1e5))
    def test_tb_day_gbps_order(self, tbday):
        # 1 TB/day is well under 1 Gbps; scaling is linear.
        gbps = units.tb_per_day_to_gbps(tbday)
        assert gbps == pytest.approx(tbday * units.tb_per_day_to_gbps(1.0), rel=1e-9)
