"""Fault injection: schedules, both fluid engines, and the pipeline.

Pins the fault layer's three contracts:

1. *No-op schedules change nothing*: a zero-length outage or a
   ``capacity_frac=1.0`` event is bit-identical to a fault-free run in
   both engines, for every congestion control, batch composition and
   worker count (the masked updates are free when unused).
2. *Batch == sequential under faults*: the bit-equivalence discipline
   of the batched engine extends to every faulted composition —
   brownouts, full outages, permanent outages with aborts, multi-event
   schedules, mixed faulted/fault-free batches.
3. *The golden brownout scenario*: a Table-2 cell with a 5 s mid-run
   outage pins concrete completion times, stall/retry counts and the
   decision-relevant inflation, so behavioural drift in the fault
   semantics cannot pass silently.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.iperfsim.runner import run_experiment, run_experiments_batched
from repro.iperfsim.spec import ExperimentSpec, point_fault_schedule
from repro.simnet.batch import BatchFluidSimulator
from repro.simnet.faults import (
    FaultEvent,
    brownout_schedule,
    capacity_factor,
    coerce_faults,
    schedule_is_noop,
)
from repro.simnet.link import fabric_link
from repro.simnet.records import validate_conservation
from repro.simnet.tcp import FluidTcpSimulator, TcpConfig


def assert_results_bit_identical(a, b, label=""):
    assert a.end_time_s == b.end_time_s, label
    for name, col in a.flow_columns.items():
        np.testing.assert_array_equal(
            col, b.flow_columns[name], err_msg=f"{label} flow col {name}"
        )
    for name, col in a.sample_columns.items():
        np.testing.assert_array_equal(
            col, b.sample_columns[name], err_msg=f"{label} sample col {name}"
        )


#: Small, fast flow sets (a second or two of simulated time each).
FLOWS = [(0.0, 0.12e9, 0), (0.4, 0.12e9, 1), (1.0, 0.08e9, 2)]

#: Effective fault schedules covering the behaviour space: brownout,
#: full outage, outage from t=0, permanent outage (aborts), two events.
SCHEDULES = [
    (FaultEvent(0.5, 1.0, 0.3),),
    (FaultEvent(0.5, 2.0, 0.0),),
    (FaultEvent(0.0, 1.5, 0.0),),
    (FaultEvent(0.2, 1e9, 0.0),),
    (FaultEvent(0.3, 0.5, 0.0), FaultEvent(1.5, 0.8, 0.25)),
]


# ----------------------------------------------------------------------
# Schedule objects
# ----------------------------------------------------------------------
class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ValidationError):
            FaultEvent(-1.0, 1.0)
        with pytest.raises(ValidationError):
            FaultEvent(0.0, -1.0)
        with pytest.raises(ValidationError):
            FaultEvent(0.0, 1.0, 1.5)
        with pytest.raises(ValidationError):
            FaultEvent(0.0, float("nan"))

    def test_coerce_forms(self):
        e = FaultEvent(1.0, 2.0, 0.5)
        assert coerce_faults(None) == ()
        assert coerce_faults(e) == (e,)
        assert coerce_faults([e, e]) == (e, e)
        with pytest.raises(ValidationError):
            coerce_faults("not a schedule")

    def test_capacity_factor_windows(self):
        sched = (FaultEvent(1.0, 2.0, 0.25),)
        assert capacity_factor(sched, 0.999) == 1.0
        assert capacity_factor(sched, 1.0) == 0.25
        assert capacity_factor(sched, 2.999) == 0.25
        assert capacity_factor(sched, 3.0) == 1.0  # end exclusive
        # Overlapping events: the most severe wins.
        both = sched + (FaultEvent(1.5, 0.5, 0.0),)
        assert capacity_factor(both, 1.7) == 0.0

    def test_noop_detection(self):
        assert schedule_is_noop(())
        assert schedule_is_noop((FaultEvent(1.0, 0.0, 0.0),))
        assert schedule_is_noop((FaultEvent(1.0, 5.0, 1.0),))
        assert not schedule_is_noop((FaultEvent(1.0, 5.0, 0.5),))

    def test_brownout_schedule(self):
        assert brownout_schedule(0.0) == ()
        (e,) = brownout_schedule(5.0, 0.5, start_s=2.0)
        assert (e.start_s, e.duration_s, e.capacity_frac) == (2.0, 5.0, 0.5)
        with pytest.raises(ValidationError, match="ends at"):
            brownout_schedule(5.0, start_s=10.0, duration_s=10.0)
        with pytest.raises(ValidationError):
            brownout_schedule(-1.0)

    def test_point_fault_schedule(self):
        assert point_fault_schedule({"concurrency": 1}) == ()
        (e,) = point_fault_schedule(
            {"outage_s": 3.0, "degrade_frac": 0.5, "fault_start_s": 1.0}
        )
        assert (e.start_s, e.duration_s, e.capacity_frac) == (1.0, 3.0, 0.5)


class TestTcpConfigKnobs:
    def test_retry_knob_validation(self):
        with pytest.raises(ValidationError):
            TcpConfig(stall_timeout_s=0.0)
        with pytest.raises(ValidationError):
            TcpConfig(retry_backoff_s=-1.0)
        with pytest.raises(ValidationError):
            TcpConfig(retry_backoff_max_s=0.5)  # below retry_backoff_s
        with pytest.raises(ValidationError):
            TcpConfig(max_retries=-1)
        with pytest.raises(ValidationError):
            TcpConfig(max_retries=True)
        assert TcpConfig(max_retries=0).max_retries == 0


# ----------------------------------------------------------------------
# No-op schedules are bit-free in both engines
# ----------------------------------------------------------------------
noop_events = st.lists(
    st.one_of(
        st.builds(
            FaultEvent,
            st.floats(0.0, 5.0),
            st.just(0.0),  # zero-length outage
            st.floats(0.0, 1.0),
        ),
        st.builds(
            FaultEvent,
            st.floats(0.0, 5.0),
            st.floats(0.0, 10.0),
            st.just(1.0),  # full-capacity "degradation"
        ),
    ),
    min_size=0,
    max_size=3,
)


class TestNoopBitIdentity:
    @settings(max_examples=15, deadline=None)
    @given(
        faults=noop_events,
        cc=st.sampled_from(["reno", "dctcp", "delay"]),
        split=st.sampled_from([1, 2]),
    )
    def test_noop_schedule_is_bit_identical(self, faults, cc, split):
        """Zero-length / frac=1.0 schedules change no bit of either
        engine's output, for every CC and batch composition."""
        link = fabric_link()

        def sequential(schedule):
            sim = FluidTcpSimulator(link, seed=0, faults=schedule)
            for f in FLOWS:
                sim.add_flow(*f, cc=cc)
            return sim.run(max_time_s=60.0)

        base = sequential(None)
        assert_results_bit_identical(base, sequential(faults), "sequential")

        # split=1: faulted and fault-free experiments share one batch;
        # split=2: each runs in its own batch.
        schedules = (None, faults)
        if split == 1:
            batches = [BatchFluidSimulator()]
            for schedule in schedules:
                e = batches[0].add_experiment(link, seed=0, faults=schedule)
                for f in FLOWS:
                    batches[0].add_flow(e, *f, cc=cc)
        else:
            batches = []
            for schedule in schedules:
                bat = BatchFluidSimulator()
                e = bat.add_experiment(link, seed=0, faults=schedule)
                for f in FLOWS:
                    bat.add_flow(e, *f, cc=cc)
                batches.append(bat)
        for bat in batches:
            for res in bat.run(max_time_s=60.0):
                assert_results_bit_identical(base, res, "batched")

    @pytest.mark.parametrize("workers", [1, 2])
    def test_noop_schedule_through_pipeline_workers(self, workers):
        """The pooled pipeline with a no-op schedule matches the
        fault-free run for any worker count."""
        noop = (FaultEvent(1.0, 0.0, 0.0),)
        specs = [
            ExperimentSpec(
                concurrency=c, parallel_flows=2, duration_s=2.0, faults=f
            )
            for c in (1, 3)
            for f in ((), noop)
        ]
        units = [(s, 0) for s in specs]
        res = run_experiments_batched(
            units, max_time_s=60.0, workers=workers, batch_size=1
        )
        for plain, faulted in zip(res[::2], res[1::2]):
            assert plain.client_times_s == faulted.client_times_s
            assert faulted.stall_time_s == 0.0
            assert faulted.retries == 0 and faulted.aborted == 0


# ----------------------------------------------------------------------
# Batch == sequential for every faulted composition
# ----------------------------------------------------------------------
class TestFaultedBitEquivalence:
    @pytest.mark.parametrize("cc", ["reno", "dctcp", "delay"])
    def test_mixed_faulted_batch_matches_sequential(self, cc):
        link = fabric_link()
        cases = [None] + SCHEDULES
        sequential = []
        for sched in cases:
            sim = FluidTcpSimulator(link, seed=0, faults=sched)
            for f in FLOWS:
                sim.add_flow(*f, cc=cc)
            sequential.append(sim.run(max_time_s=60.0))

        bat = BatchFluidSimulator()
        for sched in cases:
            e = bat.add_experiment(link, seed=0, faults=sched)
            for f in FLOWS:
                bat.add_flow(e, *f, cc=cc)
        for seq, res in zip(sequential, bat.run(max_time_s=60.0)):
            assert_results_bit_identical(seq, res, f"cc={cc}")

    def test_faulted_batch_membership_invariance(self):
        """An experiment's bits don't depend on which faulted peers
        share its batch: one big batch == one batch per experiment."""
        link = fabric_link()
        cases = [None] + SCHEDULES
        whole = BatchFluidSimulator()
        for sched in cases:
            e = whole.add_experiment(link, seed=0, faults=sched)
            for f in FLOWS:
                whole.add_flow(e, *f)
        merged = whole.run(max_time_s=60.0)

        for sched, a in zip(cases, merged):
            solo = BatchFluidSimulator()
            e = solo.add_experiment(link, seed=0, faults=sched)
            for f in FLOWS:
                solo.add_flow(e, *f)
            (b,) = solo.run(max_time_s=60.0)
            assert_results_bit_identical(a, b, f"faults={sched}")

    @pytest.mark.parametrize("batch_size", [1, 2, 6])
    def test_faulted_pipeline_batch_size_invariance(self, batch_size):
        """run_experiments_batched chunking doesn't change faulted
        results."""
        faults = brownout_schedule(3.0, 0.0, start_s=0.5, duration_s=2.0)
        specs = [
            ExperimentSpec(
                concurrency=c, parallel_flows=p, duration_s=2.0, faults=f
            )
            for c in (1, 2)
            for p in (1, 2)
            for f in ((), faults)
        ]
        units = [(s, 0) for s in specs]
        ref = [run_experiment(s, seed=0, max_time_s=60.0) for s in specs]
        got = run_experiments_batched(
            units, max_time_s=60.0, batch_size=batch_size
        )
        for a, b in zip(ref, got):
            assert a.client_times_s == b.client_times_s
            assert a.stall_time_s == b.stall_time_s
            assert a.retries == b.retries
            assert a.aborted == b.aborted


# ----------------------------------------------------------------------
# Fault semantics
# ----------------------------------------------------------------------
class TestFaultSemantics:
    def test_brownout_slows_completion(self):
        link = fabric_link()
        base = FluidTcpSimulator(link, seed=0)
        base.add_flow(0.0, 0.25e9, 0)
        t_base = base.run(max_time_s=60.0).flows[0].end_s

        brown = FluidTcpSimulator(
            link, seed=0, faults=FaultEvent(0.0, 1.0, 0.25)
        )
        brown.add_flow(0.0, 0.25e9, 0)
        t_brown = brown.run(max_time_s=60.0).flows[0].end_s
        assert t_brown > t_base

    def test_outage_triggers_retry_and_recovery(self):
        """A mid-run full outage stalls the flows, which reconnect
        after backoff and finish once capacity returns."""
        link = fabric_link()
        sim = FluidTcpSimulator(link, seed=0, faults=FaultEvent(0.1, 8.0, 0.0))
        sim.add_flow(0.0, 1.0e9, 0)
        res = sim.run(max_time_s=120.0)
        (flow,) = res.flows
        assert not flow.aborted
        assert flow.retries >= 1
        assert flow.stall_time_s > 0.0
        assert flow.end_s > 8.0  # finished after the outage lifted
        assert flow.bytes_sent == pytest.approx(1.0e9)

    def test_permanent_outage_aborts_after_retry_cap(self):
        cfg = TcpConfig(max_retries=2)
        link = fabric_link()
        sim = FluidTcpSimulator(
            link, config=cfg, seed=0, faults=FaultEvent(0.1, 1e9, 0.0)
        )
        sim.add_flow(0.0, 1.0e9, 0)
        res = sim.run(max_time_s=300.0)
        (flow,) = res.flows
        assert flow.aborted
        assert flow.retries == 2
        assert math.isnan(flow.end_s)
        validate_conservation(res)

    def test_abort_terminates_batch_run(self):
        """Aborted flows count toward retirement — a permanent outage
        must not hang the batch engine until max_time_s."""
        bat = BatchFluidSimulator()
        e = bat.add_experiment(
            fabric_link(), seed=0, faults=FaultEvent(0.1, 1e9, 0.0)
        )
        bat.add_flow(e, 0.0, 1.0e9, 0)
        (res,) = bat.run(max_time_s=500.0)
        assert res.flows[0].aborted
        assert res.end_time_s < 500.0

    def test_fault_free_columns_all_zero(self):
        sim = FluidTcpSimulator(fabric_link(), seed=0)
        sim.add_flow(0.0, 0.1e9, 0)
        cols = sim.run(max_time_s=60.0).flow_columns
        assert not np.any(cols["aborted"])
        assert not np.any(cols["retries"])
        assert not np.any(cols["stall_time_s"])


# ----------------------------------------------------------------------
# The golden brownout scenario
# ----------------------------------------------------------------------
class TestGoldenBrownout:
    """Table-2 cell (concurrency 2, P=2, 4 s) + a 5 s full outage
    opening at t=2 s.  Concrete values pinned from the implementation;
    any drift in stall/retry/fault semantics shows up here."""

    SPEC = ExperimentSpec(
        concurrency=2,
        parallel_flows=2,
        duration_s=4.0,
        faults=brownout_schedule(5.0, 0.0, start_s=2.0, duration_s=4.0),
    )
    BASE = ExperimentSpec(concurrency=2, parallel_flows=2, duration_s=4.0)

    def test_pinned_outcome(self):
        res = run_experiment(self.SPEC, seed=0, max_time_s=120.0)
        assert res.completed_clients == 8  # every client recovers
        assert res.aborted == 0
        assert res.retries == 8  # one reconnect per outage-severed flow
        assert res.stall_time_s == pytest.approx(32.032, abs=1e-9)
        assert res.max_transfer_time_s == pytest.approx(
            5.764617332681254, abs=1e-12
        )
        # Pre-fault clients are untouched; post-fault clients carry the
        # outage plus backoff.
        times = [res.client_times_s[c] for c in sorted(res.client_times_s)]
        assert max(times[:4]) < 0.6
        assert min(times[4:]) > 5.0

    def test_decision_flip_vs_fault_free(self):
        """The outage flips the cell across the real-time regime
        boundary: fault-free it streams comfortably, faulted it does
        not — the decision-surface consequence the robustness
        reduction reports as inflation."""
        faulted = run_experiment(self.SPEC, seed=0, max_time_s=120.0)
        base = run_experiment(self.BASE, seed=0, max_time_s=120.0)
        assert base.max_transfer_time_s == pytest.approx(
            0.5221151031704827, abs=1e-12
        )
        inflation = faulted.max_transfer_time_s / base.max_transfer_time_s
        assert inflation > 10.0
        # Regime flip: under 1 s (keeps up with the 1 Hz batch cadence)
        # fault-free, multiple seconds behind under the brownout.
        assert base.max_transfer_time_s < 1.0 < faulted.max_transfer_time_s
