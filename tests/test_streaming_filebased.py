"""File-based staging pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.storage.aggregation import AggregationPlan
from repro.storage.dtn import DtnModel
from repro.streaming.filebased import FileBasedPipeline
from repro.workloads.instrument import FrameSpec
from repro.workloads.scan import ScanSpec


def scan(n_frames=24, interval=0.05):
    return ScanSpec(
        frame=FrameSpec(2048, 2048, 2), n_frames=n_frames, frame_interval_s=interval
    )


def plan_for(s, n_files):
    return AggregationPlan(
        n_frames=s.n_frames, frame_bytes=float(s.frame_bytes), n_files=n_files
    )


def run(s, n_files, source, dest, dtn):
    return FileBasedPipeline(s, plan_for(s, n_files), source, dest, dtn).run()


class TestBasics:
    def test_all_files_delivered(self, source_fs, dest_fs, dtn):
        res = run(scan(), 4, source_fs, dest_fs, dtn)
        assert res.n_files == 4
        assert np.all(np.isfinite(res.file_delivered_s))

    def test_ordering_invariants(self, source_fs, dest_fs, dtn):
        res = run(scan(), 4, source_fs, dest_fs, dtn)
        assert np.all(res.file_transfer_start_s >= res.file_closed_s)
        assert np.all(res.file_delivered_s > res.file_transfer_start_s)

    def test_completion_after_generation(self, source_fs, dest_fs, dtn):
        res = run(scan(), 4, source_fs, dest_fs, dtn)
        assert res.completion_s > res.generation_end_s

    def test_single_file_waits_for_whole_scan(self, source_fs, dest_fs, dtn):
        s = scan()
        res = run(s, 1, source_fs, dest_fs, dtn)
        # Aggregation wait: the only file closes after the last frame.
        assert res.file_closed_s[0] >= s.generation_time_s

    def test_aggregation_wait_shrinks_with_more_files(
        self, source_fs, dest_fs, dtn
    ):
        waits = [
            run(scan(), n, source_fs, dest_fs, dtn).aggregation_wait_s
            for n in (1, 4, 24)
        ]
        assert waits[0] > waits[1] > waits[2]


class TestSmallFilePenalty:
    def test_per_frame_files_slowest(self, source_fs, dest_fs, dtn):
        s = scan()
        few = run(s, 2, source_fs, dest_fs, dtn).completion_s
        many = run(s, 24, source_fs, dest_fs, dtn).completion_s
        assert many > few

    def test_dtn_queue_builds_when_service_slower_than_arrivals(
        self, source_fs, dest_fs
    ):
        # 0.5 s per-file setup vs 0.05 s frame interval: queueing delay
        # accumulates linearly in file index.
        slow_dtn = DtnModel(
            wan_bandwidth_gbps=25.0, alpha=0.5, per_file_setup_s=0.5
        )
        s = scan()
        res = run(s, 24, source_fs, dest_fs, slow_dtn)
        staging = res.file_staging_times_s()
        assert staging[-1] > staging[0] * 3


class TestConcurrency:
    def test_more_slots_faster(self, source_fs, dest_fs):
        s = scan()
        serial = DtnModel(wan_bandwidth_gbps=25.0, alpha=0.5, per_file_setup_s=0.5)
        parallel = DtnModel(
            wan_bandwidth_gbps=25.0, alpha=0.5, per_file_setup_s=0.5, concurrency=4
        )
        t_serial = run(s, 24, source_fs, dest_fs, serial).completion_s
        t_parallel = run(s, 24, source_fs, dest_fs, parallel).completion_s
        assert t_parallel < t_serial


class TestValidation:
    def test_plan_frame_count_mismatch(self, source_fs, dest_fs, dtn):
        s = scan(n_frames=24)
        bad_plan = AggregationPlan(
            n_frames=23, frame_bytes=float(s.frame_bytes), n_files=1
        )
        with pytest.raises(ValidationError):
            FileBasedPipeline(s, bad_plan, source_fs, dest_fs, dtn)

    def test_plan_frame_size_mismatch(self, source_fs, dest_fs, dtn):
        s = scan()
        bad_plan = AggregationPlan(n_frames=24, frame_bytes=1e6, n_files=1)
        with pytest.raises(ValidationError):
            FileBasedPipeline(s, bad_plan, source_fs, dest_fs, dtn)

    def test_trace_override(self, source_fs, dest_fs, dtn):
        s = scan(n_frames=4)
        trace = [1.0, 2.0, 3.0, 100.0]
        res = FileBasedPipeline(
            s, plan_for(s, 2), source_fs, dest_fs, dtn, frame_times_s=trace
        ).run()
        assert res.generation_end_s == pytest.approx(100.0)

    def test_bad_trace_rejected(self, source_fs, dest_fs, dtn):
        s = scan(n_frames=3)
        with pytest.raises(ValidationError):
            FileBasedPipeline(
                s, plan_for(s, 1), source_fs, dest_fs, dtn,
                frame_times_s=[3.0, 2.0, 1.0],
            )
