"""Out-of-core sweep storage: shard round-trips, streaming execution,
and incremental analysis equal to the in-memory answers."""

from __future__ import annotations

import json
from functools import partial

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.crossover import crossover_bandwidth, crossover_from_sweep
from repro.analysis.regimes import (
    regime_breakdown_from_sweep,
    regime_tally_from_sweep,
)
from repro.core.parameters import aps_to_alcf_defaults
from repro.errors import ValidationError
from repro.sweep import (
    Axis,
    ShardReader,
    ShardWriter,
    ShardedSweepResult,
    SweepResult,
    SweepSpec,
    evaluate_point,
    facility_axes,
    iter_model_sweep,
    open_shards,
    run_model_sweep,
    run_sweep,
)

BASE = aps_to_alcf_defaults()


def _assert_tables_equal(a, b):
    assert list(a.columns) == list(b.columns)
    assert a.axis_names == b.axis_names
    for name in a.columns:
        np.testing.assert_array_equal(a.column(name), b.column(name), err_msg=name)


class TestShardWriterReader:
    def test_blocks_split_into_fixed_shards(self, tmp_path):
        with ShardWriter(tmp_path, shard_size=10, axis_names=("x",)) as w:
            for lo in range(0, 35, 7):
                w.append({"x": np.arange(lo, lo + 7, dtype=float)})
        reader = ShardReader(tmp_path)
        assert reader.n_rows == 35
        assert [s["n_rows"] for s in reader.shards] == [10, 10, 10, 5]
        got = np.concatenate([b["x"] for b in reader.iter_blocks()])
        np.testing.assert_array_equal(got, np.arange(35, dtype=float))

    def test_manifest_contents(self, tmp_path):
        with ShardWriter(tmp_path, shard_size=4, axis_names=("x",)) as w:
            w.append({"x": [1.0, 2.0], "label": ["a", "b"]})
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["n_rows"] == 2
        assert manifest["axis_names"] == ["x"]
        kinds = {c["name"]: c["kind"] for c in manifest["columns"]}
        assert kinds == {"x": "numeric", "label": "json"}

    def test_column_subset_reads_only_requested(self, tmp_path):
        with ShardWriter(tmp_path, shard_size=8) as w:
            w.append({"x": [1.0, 2.0], "y": [3.0, 4.0]})
        block = ShardReader(tmp_path).read_shard(0, columns=("y",))
        assert list(block) == ["y"]

    def test_mismatched_columns_rejected(self, tmp_path):
        w = ShardWriter(tmp_path, shard_size=4)
        w.append({"x": [1.0]})
        with pytest.raises(ValidationError, match="column set"):
            w.append({"y": [1.0]})

    def test_mismatched_lengths_rejected(self, tmp_path):
        w = ShardWriter(tmp_path, shard_size=4)
        with pytest.raises(ValidationError, match="one length"):
            w.append({"x": [1.0, 2.0], "y": [1.0]})

    def test_close_without_rows_writes_empty_manifest(self, tmp_path):
        # A zero-point sweep is an answer, not a crash: closing a writer
        # that never saw a row leaves a valid empty directory.
        path = ShardWriter(tmp_path, shard_size=4).close()
        assert path.exists()
        table = open_shards(tmp_path)
        assert table.n_rows == 0
        assert table.n_shards == 0
        assert table.column_names == ()
        assert list(table.iter_blocks()) == []

    def test_append_after_close_rejected(self, tmp_path):
        w = ShardWriter(tmp_path, shard_size=4)
        w.append({"x": [1.0]})
        w.close()
        with pytest.raises(ValidationError, match="closed"):
            w.append({"x": [2.0]})

    def test_bad_shard_size_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="shard_size"):
            ShardWriter(tmp_path, shard_size=0)

    def test_unserialisable_object_column_rejected(self, tmp_path):
        w = ShardWriter(tmp_path, shard_size=1)
        with pytest.raises(ValidationError, match="shard columns"):
            w.append({"x": np.array([object()], dtype=object)})

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="manifest"):
            ShardReader(tmp_path)

    def test_unknown_column_rejected(self, tmp_path):
        with ShardWriter(tmp_path, shard_size=4) as w:
            w.append({"x": [1.0]})
        with pytest.raises(ValidationError, match="unknown shard columns"):
            ShardReader(tmp_path).read_shard(0, columns=("nope",))


class TestRoundTrip:
    def test_facility_sweep_round_trips_exactly(self, tmp_path):
        spec = facility_axes().product(
            SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 9))
        )
        table = run_model_sweep(spec, base=BASE)
        table.to_shards(tmp_path, shard_size=7)
        _assert_tables_equal(table, SweepResult.from_shards(tmp_path))

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        n=st.integers(min_value=1, max_value=40),
        shard_size=st.integers(min_value=1, max_value=17),
        values=st.lists(
            st.floats(
                min_value=-1e12, max_value=1e12,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=1,
            max_size=8,
        ),
    )
    def test_random_tables_bit_identical(self, tmp_path, n, shard_size, values):
        """from_shards(to_shards(r)) == r bit-for-bit for arbitrary
        float columns, bool flags and string labels."""
        rng = np.random.default_rng(n * 1000 + shard_size)
        table = SweepResult(
            {
                "x": np.asarray(
                    [values[i % len(values)] for i in range(n)], dtype=float
                ),
                "noise": rng.standard_normal(n),
                "flag": rng.standard_normal(n) > 0,
                "label": np.array([f"g{i % 3}" for i in range(n)], dtype=object),
            },
            axis_names=("x", "label"),
        )
        out = tmp_path / f"rt-{n}-{shard_size}"
        table.to_shards(out, shard_size=shard_size)
        back = SweepResult.from_shards(out)
        for name in table.columns:
            a, b = table.column(name), back.column(name)
            assert a.dtype.kind == b.dtype.kind, name
            np.testing.assert_array_equal(a, b, err_msg=name)


class TestShardedView:
    def _sharded(self, tmp_path, n_bw=30, shard_size=7):
        spec = facility_axes().product(
            SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, n_bw))
        )
        table = run_model_sweep(spec, base=BASE)
        sharded = run_model_sweep(spec, base=BASE, out=tmp_path, block_size=shard_size)
        return table, sharded

    def test_lazy_columns_match(self, tmp_path):
        table, sharded = self._sharded(tmp_path)
        assert sharded.n_rows == table.n_rows
        assert sharded.axis_names == table.axis_names
        assert sharded.metric_names == table.metric_names
        for name in table.columns:
            np.testing.assert_array_equal(
                sharded.column(name), table.column(name), err_msg=name
            )

    def test_unique_matches(self, tmp_path):
        table, sharded = self._sharded(tmp_path)
        assert sharded.unique("facility") == table.unique("facility")

    def test_to_result_materialises(self, tmp_path):
        table, sharded = self._sharded(tmp_path)
        _assert_tables_equal(table, sharded.to_result())

    def test_open_shards_helper(self, tmp_path):
        _, sharded = self._sharded(tmp_path)
        assert open_shards(tmp_path).n_rows == sharded.n_rows

    def test_streaming_crossover_matches_in_memory(self, tmp_path):
        table, sharded = self._sharded(tmp_path)
        assert sharded.crossover("bandwidth_gbps") == table.crossover(
            "bandwidth_gbps"
        )

    def test_streaming_crossover_grouped(self, tmp_path):
        table, sharded = self._sharded(tmp_path)
        assert sharded.crossover(
            "bandwidth_gbps", group_by=("facility",)
        ) == table.crossover("bandwidth_gbps", group_by=("facility",))

    def test_crossover_descending_axis_falls_back(self, tmp_path):
        """Unsorted-within-group x still produces the in-memory answer
        (via the sorted fallback that loads only the needed columns)."""
        spec = SweepSpec.grid(
            Axis("bandwidth_gbps", tuple(np.geomspace(400.0, 1.0, 40)))
        )
        table = run_model_sweep(spec, base=BASE)
        sharded = run_model_sweep(spec, base=BASE, out=tmp_path, block_size=6)
        assert sharded.crossover("bandwidth_gbps") == table.crossover(
            "bandwidth_gbps"
        )

    def test_crossover_unsorted_after_crossing_still_matches(self, tmp_path):
        """Out-of-order x arriving *after* a crossing was located must
        still fall back to the sorted answer (regression: the order
        check used to be skipped once a group resolved)."""
        with ShardWriter(tmp_path, shard_size=2, axis_names=("x",)) as w:
            w.append({"x": [10.0, 20.0], "speedup": [0.5, 2.0]})
            w.append({"x": [1.0, 2.0], "speedup": [0.5, 5.0]})
        sharded = ShardedSweepResult(tmp_path)
        expected = sharded.to_result().crossover("x")
        assert sharded.crossover("x") == expected

    def test_empty_table_to_shards_rejected(self, tmp_path):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (5.0, 25.0)))
        table = run_model_sweep(spec, base=BASE)
        empty = table.filter(bandwidth_gbps=99.0)
        with pytest.raises(ValidationError, match="empty table"):
            empty.to_shards(tmp_path)

    def test_crossover_never_crossing_is_none(self, tmp_path):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (0.01, 0.02, 0.03)))
        table = run_model_sweep(spec, base=BASE)
        sharded = run_model_sweep(spec, base=BASE, out=tmp_path, block_size=2)
        [mem] = table.crossover("bandwidth_gbps")
        [inc] = sharded.crossover("bandwidth_gbps")
        assert mem["bandwidth_gbps"] is None
        assert inc == mem


class TestStreamingEngine:
    def test_iter_model_sweep_blocks_concatenate_to_whole(self):
        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 11),
            Axis.geomspace("s_unit_gb", 0.5, 50.0, 5),
        )
        whole = run_model_sweep(spec, base=BASE)
        blocks = list(iter_model_sweep(spec, base=BASE, block_size=8))
        assert sum(b.n_rows for b in blocks) == spec.n_points
        assert all(b.n_rows <= 8 for b in blocks)
        for name in whole.columns:
            np.testing.assert_array_equal(
                np.concatenate([b.column(name) for b in blocks]),
                whole.column(name),
                err_msg=name,
            )

    def test_columns_slice_matches_full_columns(self):
        spec = facility_axes().product(
            SweepSpec.grid(Axis("bandwidth_gbps", (5.0, 25.0, 100.0)))
        )
        full = spec.columns()
        for start, stop in ((0, 4), (3, 9), (9, 12), (0, 12)):
            part = spec.columns_slice(start, stop)
            for name in full:
                np.testing.assert_array_equal(
                    part[name], full[name][start:stop], err_msg=name
                )

    def test_columns_slice_bad_range_rejected(self):
        spec = SweepSpec.grid(Axis("x", (1.0, 2.0)))
        with pytest.raises(ValidationError, match="out of range"):
            spec.columns_slice(0, 5)

    def test_bad_block_size_rejected(self):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (5.0,)))
        with pytest.raises(ValidationError, match="block_size"):
            list(iter_model_sweep(spec, base=BASE, block_size=0))

    def test_streamed_model_sweep_equals_materialised(self, tmp_path):
        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 13),
            Axis.geomspace("complexity_flop_per_gb", 1e10, 1e14, 7),
        )
        table = run_model_sweep(spec, base=BASE)
        sharded = run_model_sweep(spec, base=BASE, out=tmp_path, block_size=10)
        assert isinstance(sharded, ShardedSweepResult)
        _assert_tables_equal(table, sharded.to_result())

    def test_streamed_run_sweep_equals_materialised(self, tmp_path):
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 9))
        fn = partial(evaluate_point, base=BASE.as_dict())
        table = run_sweep(spec, fn)
        sharded = run_sweep(spec, fn, out=tmp_path, block_size=4)
        _assert_tables_equal(table, sharded.to_result())

    def test_streamed_run_sweep_with_workers_reuses_one_pool(self, tmp_path):
        """Multi-worker streamed run_sweep (one hoisted pool across all
        blocks) matches the serial streamed results exactly."""
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 12))
        fn = partial(evaluate_point, base=BASE.as_dict())
        serial = run_sweep(spec, fn, out=tmp_path / "serial", block_size=5)
        parallel = run_sweep(
            spec, fn, workers=3, out=tmp_path / "parallel", block_size=5
        )
        _assert_tables_equal(serial.to_result(), parallel.to_result())

    def test_streamed_run_sweep_hybrid_backend_matches(self, tmp_path):
        """The hybrid backend also reuses one hoisted executor across
        blocks and produces identical streamed results."""
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 10))
        fn = partial(evaluate_point, base=BASE.as_dict())
        serial = run_sweep(spec, fn, out=tmp_path / "serial", block_size=4)
        hybrid = run_sweep(
            spec, fn, workers=3, backend="hybrid",
            out=tmp_path / "hybrid", block_size=4,
        )
        _assert_tables_equal(serial.to_result(), hybrid.to_result())

    def test_streamed_points_carry_original_axis_values(self, tmp_path):
        """Streamed run_sweep hands fn the axes' original values (an
        int stays an int), matching the in-memory path and keeping
        result-cache keys identical across both paths (regression:
        columns_slice floats used to leak into the points)."""
        from repro.sweep import ResultCache, content_hash

        spec = SweepSpec.grid(Axis("concurrency", (1, 2, 4)))
        mem = run_sweep(spec, _range_len)
        cache = ResultCache()
        run_sweep(spec, _range_len, cache=cache)
        assert cache.misses == 3
        streamed = run_sweep(
            spec, _range_len, cache=cache, out=tmp_path, block_size=2
        )
        assert cache.hits == 3 and cache.misses == 3  # all served from cache
        np.testing.assert_array_equal(
            streamed.column("value"), mem.column("value")
        )
        assert content_hash(_range_len, {"concurrency": 1}) == content_hash(
            _range_len, spec.points_slice(0, 1)[0]
        )

    def test_streamed_run_sweep_scalar_results(self, tmp_path):
        spec = SweepSpec.grid(Axis("x", (1.0, 2.0, 3.0)))
        sharded = run_sweep(spec, _times_ten, out=tmp_path, block_size=2)
        np.testing.assert_allclose(sharded.column("value"), [10.0, 20.0, 30.0])

    def test_streamed_sweep_into_existing_writer(self, tmp_path):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (5.0, 25.0, 100.0)))
        writer = ShardWriter(tmp_path, shard_size=2, axis_names=spec.axis_names)
        sharded = run_model_sweep(spec, base=BASE, out=writer)
        assert sharded.n_rows == 3
        assert sharded.n_shards == 2


def _times_ten(pt):
    return pt["x"] * 10


def _range_len(pt):
    # Requires a true int: range(np.float64) raises TypeError.
    return len(range(pt["concurrency"]))


class TestIncrementalAnalysis:
    """crossover_from_sweep / regime_breakdown_from_sweep accept shard
    sources and agree with the in-memory answers."""

    def _bw_grid(self, tmp_path):
        # The Figure-4 operating point: APS preset, bandwidth swept
        # through the paper's 1-400 Gbps WAN range.
        spec = facility_axes().product(
            SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 60))
        )
        table = run_model_sweep(spec, base=BASE)
        sharded = run_model_sweep(spec, base=BASE, out=tmp_path, block_size=16)
        return table, sharded

    def test_crossover_from_sweep_accepts_sharded_view(self, tmp_path):
        table, sharded = self._bw_grid(tmp_path)
        assert crossover_from_sweep(
            sharded, x="bandwidth_gbps", group_by=("facility",)
        ) == crossover_from_sweep(table, x="bandwidth_gbps", group_by=("facility",))

    def test_crossover_from_sweep_accepts_directory_path(self, tmp_path):
        table, _ = self._bw_grid(tmp_path)
        from_path = crossover_from_sweep(str(tmp_path), x="bandwidth_gbps")
        assert from_path == crossover_from_sweep(table, x="bandwidth_gbps")

    def test_crossover_from_sweep_accepts_manifest_path(self, tmp_path):
        table, _ = self._bw_grid(tmp_path)
        from_manifest = crossover_from_sweep(
            str(tmp_path / "manifest.json"), x="bandwidth_gbps"
        )
        assert from_manifest == crossover_from_sweep(table, x="bandwidth_gbps")

    def test_crossover_json_text_still_accepted(self, tmp_path):
        table, _ = self._bw_grid(tmp_path)
        assert crossover_from_sweep(
            table.to_json(), x="bandwidth_gbps"
        ) == crossover_from_sweep(table, x="bandwidth_gbps")

    def test_sharded_crossover_brackets_closed_form(self, tmp_path):
        """The incremental grid crossover lands within one grid step of
        the closed-form crossover bandwidth (same convention as the
        in-memory path)."""
        spec = SweepSpec.grid(Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 200))
        sharded = run_model_sweep(spec, base=BASE, out=tmp_path, block_size=32)
        [entry] = sharded.crossover("bandwidth_gbps")
        exact = crossover_bandwidth(BASE)
        xs = np.geomspace(1.0, 400.0, 200)
        step = xs[np.searchsorted(xs, exact)] - xs[np.searchsorted(xs, exact) - 1]
        assert abs(entry["bandwidth_gbps"] - exact) <= step

    def test_regime_breakdown_from_shards_matches_in_memory(self, tmp_path):
        rng = np.random.default_rng(7)
        n = 200
        table = SweepResult(
            {
                "offered_utilization": np.linspace(0.1, 1.4, n),
                "t_worst_s": np.abs(rng.standard_normal(n)) * 3.0 + 0.05,
            },
            axis_names=("offered_utilization",),
        )
        table.to_shards(tmp_path, shard_size=23)
        mem = regime_breakdown_from_sweep(table)
        inc = regime_breakdown_from_sweep(str(tmp_path))
        np.testing.assert_array_equal(mem.utilizations, inc.utilizations)
        np.testing.assert_array_equal(mem.t_worst_values, inc.t_worst_values)
        assert mem.regimes == inc.regimes
        assert mem.low_to_moderate_utilization == inc.low_to_moderate_utilization
        assert mem.moderate_to_severe_utilization == inc.moderate_to_severe_utilization

    def test_golden_table2_grid_incremental_equals_in_memory(self, tmp_path):
        """On the golden-pinned Table-2 simnet grid (duration 2 s,
        seed 0 — the same run test_golden_regressions pins), the
        shard-scanning regime and crossover analysis reproduce the
        in-memory answers exactly."""
        from repro.iperfsim.runner import run_sweep as run_iperf_sweep
        from repro.iperfsim.spec import SpawnStrategy, table2_sweep

        sweep = run_iperf_sweep(
            table2_sweep(strategy=SpawnStrategy.BATCH, duration_s=2.0), seeds=(0,)
        )
        exps = sweep.experiments
        table = SweepResult(
            {
                "concurrency": [e.spec.concurrency for e in exps],
                "parallel_flows": [e.spec.parallel_flows for e in exps],
                "offered_utilization": [e.offered_utilization for e in exps],
                "t_worst_s": [e.max_transfer_time_s for e in exps],
            },
            axis_names=("concurrency", "parallel_flows"),
        )
        table.to_shards(tmp_path, shard_size=5)

        mem_b = regime_breakdown_from_sweep(table)
        inc_b = regime_breakdown_from_sweep(str(tmp_path))
        np.testing.assert_array_equal(mem_b.utilizations, inc_b.utilizations)
        np.testing.assert_array_equal(mem_b.t_worst_values, inc_b.t_worst_values)
        assert mem_b.regimes == inc_b.regimes
        assert mem_b.low_to_moderate_utilization == inc_b.low_to_moderate_utilization

        kwargs = dict(
            x="offered_utilization",
            metric="t_worst_s",
            threshold=1.0,
            group_by=("parallel_flows",),
        )
        assert crossover_from_sweep(str(tmp_path), **kwargs) == crossover_from_sweep(
            table, **kwargs
        )

        tally = regime_tally_from_sweep(str(tmp_path), metric="t_worst_s")
        assert sum(tally.values()) == len(exps)
        for regime, count in tally.items():
            assert count == sum(1 for r in mem_b.regimes if r is regime)

    def test_regime_tally_matches_breakdown(self, tmp_path):
        rng = np.random.default_rng(11)
        table = SweepResult(
            {
                "offered_utilization": np.linspace(0.1, 1.3, 120),
                "t_worst_s": np.abs(rng.standard_normal(120)) * 2.5 + 0.05,
            },
            axis_names=("offered_utilization",),
        )
        table.to_shards(tmp_path, shard_size=17)
        breakdown = regime_breakdown_from_sweep(table)
        tally = regime_tally_from_sweep(str(tmp_path))
        for regime, count in tally.items():
            assert count == sum(1 for r in breakdown.regimes if r is regime)
        assert sum(tally.values()) == 120


class TestCompressedShards:
    """``compress=True`` writes np.savez_compressed shards: identical
    values on read, smaller files, manifest flag recorded."""

    def _grid(self):
        return SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 60),
            Axis("s_unit_gb", (0.5, 12.6)),
        )

    def test_round_trip_is_exact(self, tmp_path):
        spec = self._grid()
        raw = run_model_sweep(spec, base=BASE, out=tmp_path / "raw", block_size=16)
        packed = run_model_sweep(
            spec, base=BASE, out=tmp_path / "packed", block_size=16, compress=True
        )
        _assert_tables_equal(raw.to_result(), packed.to_result())

    def test_manifest_and_reader_record_compression(self, tmp_path):
        spec = self._grid()
        run_model_sweep(
            spec, base=BASE, out=tmp_path, block_size=16, compress=True
        )
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["compress"] is True
        assert open_shards(tmp_path).reader.compress is True

    def test_compressed_store_is_smaller(self, tmp_path):
        # A constant column compresses extremely well; sizes must drop.
        table = SweepResult(
            {"x": np.arange(5000, dtype=float), "y": np.zeros(5000)},
            axis_names=("x",),
        )
        table.to_shards(tmp_path / "raw", shard_size=1000)
        table.to_shards(tmp_path / "packed", shard_size=1000, compress=True)
        size = lambda d: sum(f.stat().st_size for f in d.glob("shard-*.npz"))
        assert size(tmp_path / "packed") < size(tmp_path / "raw") / 2

    def test_compress_without_out_rejected(self):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (25.0,)))
        with pytest.raises(ValidationError, match="compress"):
            run_model_sweep(spec, base=BASE, compress=True)
        with pytest.raises(ValidationError, match="compress"):
            run_sweep(spec, _times_ten, compress=True)

    def test_run_sweep_compressed_out(self, tmp_path):
        spec = SweepSpec.grid(Axis("x", tuple(float(v) for v in range(20))))
        sharded = run_sweep(
            spec, _times_ten, out=tmp_path, block_size=6, compress=True
        )
        assert sharded.reader.compress is True
        np.testing.assert_allclose(
            sharded.column("value"), np.arange(20, dtype=float) * 10
        )

    def test_decision_columns_survive_shard_round_trip(self, tmp_path):
        """Integer decision/tier codes are stored natively and come back
        bit-identical through compressed shards."""
        spec = self._grid()
        metrics = ("decision", "tier", "gain", "kappa")
        table = run_model_sweep(spec, base=BASE, metrics=metrics)
        sharded = run_model_sweep(
            spec, base=BASE, metrics=metrics,
            out=tmp_path, block_size=16, compress=True,
        )
        for name in ("decision", "tier"):
            col = sharded.column(name)
            assert col.dtype.kind in "iu", name
            np.testing.assert_array_equal(col, table.column(name), err_msg=name)
        for name in ("gain", "kappa"):
            np.testing.assert_array_equal(
                sharded.column(name), table.column(name), err_msg=name
            )


class TestParallelShardAnalysis:
    """workers=N scans independent shards across a process pool; the
    merged answer is identical for any worker count."""

    def _sharded_tally_store(self, tmp_path):
        rng = np.random.default_rng(23)
        table = SweepResult(
            {
                "offered_utilization": np.linspace(0.1, 1.4, 300),
                "t_worst_s": np.abs(rng.standard_normal(300)) * 3.0 + 0.05,
            },
            axis_names=("offered_utilization",),
        )
        table.to_shards(tmp_path, shard_size=37)
        return table

    def test_regime_tally_workers_match_serial(self, tmp_path):
        self._sharded_tally_store(tmp_path)
        serial = regime_tally_from_sweep(str(tmp_path))
        for workers in (2, 4):
            assert regime_tally_from_sweep(str(tmp_path), workers=workers) == serial

    def test_regime_tally_workers_on_in_memory_table(self, tmp_path):
        table = self._sharded_tally_store(tmp_path)
        assert regime_tally_from_sweep(table, workers=4) == regime_tally_from_sweep(
            table
        )

    def test_decision_tally_workers_match_serial(self, tmp_path):
        from repro.analysis.crossover import (
            decision_tally_from_sweep,
            tier_tally_from_sweep,
        )

        spec = SweepSpec.grid(
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 150),
        )
        table = run_model_sweep(
            spec, base=BASE, metrics=("decision", "tier"),
            out=tmp_path, block_size=16,
        )
        serial = decision_tally_from_sweep(table)
        assert sum(serial.values()) == 150
        assert decision_tally_from_sweep(str(tmp_path), workers=3) == serial
        tiers = tier_tally_from_sweep(table)
        assert sum(tiers.values()) == 150
        assert tier_tally_from_sweep(str(tmp_path), workers=3) == tiers
