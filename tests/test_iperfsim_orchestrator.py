"""Spawning strategies: batch spikes vs reserved slots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.iperfsim.orchestrator import (
    BatchSpawner,
    ClientPlan,
    ScheduledSpawner,
    make_spawner,
)
from repro.iperfsim.spec import ExperimentSpec, SpawnStrategy


def spec(**kw):
    base = dict(concurrency=4, parallel_flows=2, duration_s=3.0)
    base.update(kw)
    return ExperimentSpec(**base)


class TestClientPlan:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ClientPlan(client_id=0, start_s=-1.0, total_bytes=1.0, parallel_flows=1)
        with pytest.raises(ValidationError):
            ClientPlan(client_id=0, start_s=0.0, total_bytes=0.0, parallel_flows=1)
        with pytest.raises(ValidationError):
            ClientPlan(client_id=0, start_s=0.0, total_bytes=1.0, parallel_flows=0)


class TestBatchSpawner:
    def test_client_count(self):
        plans = BatchSpawner(seed=0).plan(spec())
        assert len(plans) == 12  # 4 clients x 3 seconds

    def test_batch_grouping_within_jitter(self):
        s = spec(spawn_jitter_s=0.03)
        plans = BatchSpawner(seed=0).plan(s)
        for second in range(3):
            batch = [p for p in plans if second <= p.start_s < second + 0.031]
            assert len(batch) == 4

    def test_zero_jitter_is_exact(self):
        plans = BatchSpawner(seed=0).plan(spec(spawn_jitter_s=0.0))
        starts = sorted({p.start_s for p in plans})
        assert starts == [0.0, 1.0, 2.0]

    def test_reproducible_per_seed(self):
        a = BatchSpawner(seed=5).plan(spec())
        b = BatchSpawner(seed=5).plan(spec())
        assert [p.start_s for p in a] == [p.start_s for p in b]

    def test_different_seeds_differ(self):
        a = BatchSpawner(seed=1).plan(spec())
        b = BatchSpawner(seed=2).plan(spec())
        assert [p.start_s for p in a] != [p.start_s for p in b]

    def test_unique_client_ids(self):
        plans = BatchSpawner(seed=0).plan(spec())
        assert len({p.client_id for p in plans}) == len(plans)


class TestScheduledSpawner:
    def test_slots_within_second(self):
        plans = ScheduledSpawner().plan(spec(concurrency=2))
        starts = [p.start_s for p in plans]
        # Reservation window for 0.5 GB at 25 Gbps x2 headroom = 0.32 s,
        # slots at 0.0/0.5/1.0/1.5/... all fit without pushback.
        assert starts == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])

    def test_admission_control_pushes_back(self):
        # 8 clients/s with a 0.32 s window cannot fit in 1 s: starts
        # serialise at the window spacing.
        plans = ScheduledSpawner().plan(spec(concurrency=8, duration_s=2.0))
        starts = np.array([p.start_s for p in plans])
        gaps = np.diff(starts)
        window = ScheduledSpawner().reservation_window_s(spec(concurrency=8))
        assert np.all(gaps >= window - 1e-12)

    def test_no_overlap_guarantee(self):
        sp = ScheduledSpawner()
        s = spec(concurrency=8, duration_s=2.0)
        plans = sp.plan(s)
        window = sp.reservation_window_s(s)
        for a, b in zip(plans, plans[1:]):
            assert b.start_s >= a.start_s + window - 1e-12

    def test_headroom_validation(self):
        with pytest.raises(ValidationError):
            ScheduledSpawner(reservation_headroom=0.5)

    def test_capacity_validation(self):
        with pytest.raises(ValidationError):
            ScheduledSpawner(link_capacity_gbps=0.0)


class TestFactory:
    def test_batch(self):
        assert isinstance(make_spawner(spec()), BatchSpawner)

    def test_scheduled(self):
        s = spec()
        s = ExperimentSpec(
            concurrency=s.concurrency,
            parallel_flows=s.parallel_flows,
            duration_s=s.duration_s,
            strategy=SpawnStrategy.SCHEDULED,
        )
        assert isinstance(make_spawner(s), ScheduledSpawner)
