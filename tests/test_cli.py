"""CLI subcommands (fast variants)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestStaticTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Mellanox ConnectX-5" in out
        assert "9000 bytes" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Concurrency" in out
        assert "24" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Coherent Scattering" in out
        assert "34 TF" in out


class TestModel:
    def test_model_output(self, capsys):
        code = main([
            "model",
            "--size-gb", "2", "--complexity", "17e12",
            "--local-tflops", "10", "--remote-tflops", "100",
            "--bandwidth-gbps", "25", "--alpha", "0.8", "--theta", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_pct" in out
        assert "remote" in out  # remote wins for these numbers

    def test_model_local_winner(self, capsys):
        main([
            "model",
            "--size-gb", "10", "--complexity", "1e10",
            "--local-tflops", "10", "--remote-tflops", "20",
            "--bandwidth-gbps", "1",
        ])
        out = capsys.readouterr().out
        assert "local" in out


class TestSimulationCommands:
    """Short-duration variants keep these fast."""

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "streaming" in out
        assert "1440 file(s)" in out
        assert "reduction" in out

    def test_sss_short(self, capsys):
        assert main(["sss", "--duration", "2", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "SSS" in out
        assert "regime" in out

    def test_sss_cross_facility(self, capsys):
        assert main(
            ["sss", "--duration", "2", "--seeds", "0", "--cross-facility",
             "--outage", "0.5", "--fault-link", "dtn-wan"]
        ) == 0
        out = capsys.readouterr().out
        assert "edge-hpc route" in out
        assert "regime" in out

    def test_sss_fault_link_requires_cross_facility(self):
        with pytest.raises(Exception, match="--cross-facility"):
            main(["sss", "--fault-link", "dtn-wan"])

    def test_sss_unknown_fault_link_rejected_before_simulating(self):
        with pytest.raises(Exception, match="unknown segment"):
            main(["sss", "--cross-facility", "--fault-link", "bogus"])

    def test_fig3_short(self, capsys):
        assert main(["fig3", "--duration", "2", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "P99" in out

    def test_fig2a_short(self, capsys):
        assert main(["fig2a", "--duration", "2", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(a)" in out
        assert "P=8" in out

    def test_fig2b_short(self, capsys):
        assert main(["fig2b", "--duration", "2", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2(b)" in out

    def test_casestudy_short(self, capsys):
        assert main(["casestudy", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "Liquid Scattering" in out
        assert "Latency tiers" in out
