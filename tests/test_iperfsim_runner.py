"""Experiment runner: end-to-end on short experiments."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.iperfsim.runner import run_experiment, run_sweep
from repro.iperfsim.spec import ExperimentSpec, SpawnStrategy


def short_spec(**kw):
    base = dict(concurrency=2, parallel_flows=2, duration_s=3.0)
    base.update(kw)
    return ExperimentSpec(**base)


class TestRunExperiment:
    def test_all_clients_finish_at_light_load(self):
        res = run_experiment(short_spec(), seed=0)
        assert res.completed_clients == 6

    def test_offered_utilization_recorded(self):
        res = run_experiment(short_spec(), seed=0)
        assert res.offered_utilization == pytest.approx(2 * 0.5 * 8 / 25)

    def test_achieved_at_most_one(self):
        res = run_experiment(short_spec(concurrency=8), seed=0)
        assert res.achieved_utilization <= 1.0 + 1e-9

    def test_keep_sim_attaches_result(self):
        res = run_experiment(short_spec(), seed=0, keep_sim=True)
        assert res.sim is not None
        assert res.sim.all_completed

    def test_sim_dropped_by_default(self):
        assert run_experiment(short_spec(), seed=0).sim is None

    def test_max_transfer_and_percentiles(self):
        res = run_experiment(short_spec(), seed=0)
        assert res.max_transfer_time_s >= res.percentile(50)
        assert res.percentile(100) == pytest.approx(res.max_transfer_time_s)

    def test_scheduled_faster_than_batch_under_load(self):
        batch = run_experiment(short_spec(concurrency=6), seed=1)
        sched = run_experiment(
            short_spec(concurrency=6, strategy=SpawnStrategy.SCHEDULED), seed=1
        )
        assert sched.max_transfer_time_s < batch.max_transfer_time_s

    def test_deterministic(self):
        a = run_experiment(short_spec(), seed=3)
        b = run_experiment(short_spec(), seed=3)
        assert a.client_times_s == b.client_times_s


class TestRunSweep:
    def test_sweep_shape(self):
        specs = [short_spec(concurrency=c) for c in (1, 2, 4)]
        sweep = run_sweep(specs, seeds=(0,))
        assert len(sweep.experiments) == 3
        x, y = sweep.curve(2)
        assert list(x) == sorted(x)
        assert len(y) == 3

    def test_multi_seed_pooling(self):
        specs = [short_spec()]
        one = run_sweep(specs, seeds=(0,))
        two = run_sweep(specs, seeds=(0, 1))
        assert two.experiments[0].completed_clients == (
            2 * one.experiments[0].completed_clients
        )

    def test_pooled_max_covers_both_seeds(self):
        specs = [short_spec(concurrency=4)]
        s0 = run_sweep(specs, seeds=(0,)).experiments[0].max_transfer_time_s
        s1 = run_sweep(specs, seeds=(1,)).experiments[0].max_transfer_time_s
        pooled = run_sweep(specs, seeds=(0, 1)).experiments[0].max_transfer_time_s
        assert pooled == pytest.approx(max(s0, s1))

    def test_empty_specs_rejected(self):
        with pytest.raises(ValidationError):
            run_sweep([], seeds=(0,))

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValidationError):
            run_sweep([short_spec()], seeds=())

    def test_all_transfer_times_pools_everything(self):
        specs = [short_spec(concurrency=c) for c in (1, 2)]
        sweep = run_sweep(specs, seeds=(0,))
        pooled = sweep.all_transfer_times()
        assert pooled.size == sum(e.completed_clients for e in sweep.experiments)
