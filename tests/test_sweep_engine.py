"""Sweep execution: vectorized fast path, process executor, caching."""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.core import model
from repro.core.parameters import ModelParameters, aps_to_alcf_defaults
from repro.errors import ValidationError
from repro.sweep import (
    Axis,
    ResultCache,
    SweepSpec,
    content_hash,
    evaluate_point,
    facility_axes,
    parallel_map,
    run_model_sweep,
    run_sweep,
)

BASE = aps_to_alcf_defaults()


def _grid(n_bw: int = 6, n_s: int = 3) -> SweepSpec:
    return SweepSpec.grid(
        Axis.geomspace("bandwidth_gbps", 1.0, 400.0, n_bw),
        Axis.geomspace("s_unit_gb", 0.5, 50.0, n_s),
    )


class TestVectorizedPath:
    def test_matches_per_point_evaluation(self):
        """The vectorized broadcast and the scalar evaluate() loop are
        the same model; every metric must agree elementwise."""
        spec = _grid()
        table = run_model_sweep(spec, base=BASE)
        reference = run_sweep(spec, partial(evaluate_point, base=BASE.as_dict()))
        assert table.n_rows == reference.n_rows == spec.n_points
        for m in ("t_local", "t_transfer", "t_io", "t_remote", "t_pct", "speedup"):
            np.testing.assert_allclose(
                np.asarray(table.column(m), dtype=float),
                np.asarray(reference.column(m), dtype=float),
                rtol=1e-12,
                err_msg=m,
            )
        assert np.array_equal(
            np.asarray(table.column("remote_is_faster"), dtype=bool),
            np.asarray(reference.column("remote_is_faster"), dtype=bool),
        )

    def test_sweeping_r_remote_tflops(self):
        spec = SweepSpec.grid(Axis("r_remote_tflops", (10.0, 50.0, 500.0)))
        table = run_model_sweep(spec, base=BASE)
        expected = [
            model.t_pct(
                BASE.s_unit_gb, BASE.complexity_flop_per_gb, BASE.r_local_tflops,
                BASE.bandwidth_gbps, alpha=BASE.alpha,
                r=rr / BASE.r_local_tflops, theta=BASE.theta,
            )
            for rr in (10.0, 50.0, 500.0)
        ]
        np.testing.assert_allclose(table.column("t_pct"), expected, rtol=1e-12)

    def test_sweeping_r_local_keeps_remote_absolute(self):
        """Sweeping the local rate must not silently rescale the remote
        machine: the base's r_remote_tflops stays absolute, and both
        execution modes agree (regression)."""
        spec = SweepSpec.grid(Axis("r_local_tflops", (5.0, 50.0)))
        table = run_model_sweep(spec, base=BASE)
        reference = run_sweep(spec, partial(evaluate_point, base=BASE.as_dict()))
        for m in ("t_remote", "t_pct", "speedup"):
            np.testing.assert_allclose(
                np.asarray(table.column(m), dtype=float),
                np.asarray(reference.column(m), dtype=float),
                rtol=1e-12,
                err_msg=m,
            )
        # Same absolute remote machine -> identical T_remote either way.
        assert float(table.column("t_remote")[0]) == pytest.approx(
            float(table.column("t_remote")[1]), rel=1e-12
        )

    def test_sweeping_r_directly(self):
        spec = SweepSpec.grid(Axis("r", (1.0, 10.0)))
        table = run_model_sweep(spec, base=BASE)
        assert table.column("speedup")[1] > table.column("speedup")[0]

    def test_r_and_r_remote_together_rejected(self):
        spec = SweepSpec.grid(Axis("r", (2.0,)), Axis("r_remote_tflops", (50.0,)))
        with pytest.raises(ValidationError, match="redundant"):
            run_model_sweep(spec, base=BASE)

    def test_non_model_axes_carried_through(self):
        spec = facility_axes().product(
            SweepSpec.grid(Axis("bandwidth_gbps", (25.0, 100.0)))
        )
        table = run_model_sweep(spec, base=BASE)
        assert "facility" in table.axis_names
        assert len(table.unique("facility")) == 4

    def test_metric_subset(self):
        table = run_model_sweep(_grid(3, 2), base=BASE, metrics=("t_pct", "speedup"))
        assert set(table.metric_names) == {"t_pct", "speedup"}

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValidationError, match="unknown sweep metrics"):
            run_model_sweep(_grid(2, 2), base=BASE, metrics=("t_pct", "nope"))

    def test_missing_parameter_without_base(self):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (25.0,)))
        with pytest.raises(ValidationError, match="neither swept nor supplied"):
            run_model_sweep(spec)

    def test_no_base_needed_when_fully_swept(self):
        spec = SweepSpec.grid(
            Axis("s_unit_gb", (2.0,)),
            Axis("complexity_flop_per_gb", (17e12,)),
            Axis("r_local_tflops", (10.0,)),
            Axis("r_remote_tflops", (100.0,)),
            Axis("bandwidth_gbps", (25.0,)),
        )
        table = run_model_sweep(spec)
        params = ModelParameters(
            s_unit_gb=2.0, complexity_flop_per_gb=17e12, r_local_tflops=10.0,
            r_remote_tflops=100.0, bandwidth_gbps=25.0,
        )
        assert float(table.column("t_pct")[0]) == pytest.approx(
            model.evaluate(params).t_pct, rel=1e-12
        )


class TestAxisValidation:
    """Zero/negative bandwidth or TFLOPS must raise ValidationError
    naming the offending axis — not emit numpy inf/div warnings."""

    @pytest.mark.parametrize(
        "axis,bad",
        [
            ("bandwidth_gbps", 0.0),
            ("bandwidth_gbps", -25.0),
            ("r_local_tflops", 0.0),
            ("r_remote_tflops", -1.0),
            ("s_unit_gb", 0.0),
        ],
    )
    def test_zero_and_negative_rejected_with_axis_name(self, recwarn, axis, bad):
        spec = SweepSpec.grid(Axis(axis, (1.0, bad, 10.0)))
        with pytest.raises(ValidationError, match=axis):
            run_model_sweep(spec, base=BASE)
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]

    def test_negative_complexity_rejected(self):
        spec = SweepSpec.grid(Axis("complexity_flop_per_gb", (-1.0,)))
        with pytest.raises(ValidationError, match="complexity_flop_per_gb"):
            run_model_sweep(spec, base=BASE)

    def test_alpha_above_one_rejected(self):
        spec = SweepSpec.grid(Axis("alpha", (0.5, 1.5)))
        with pytest.raises(ValidationError, match="alpha"):
            run_model_sweep(spec, base=BASE)

    def test_theta_below_one_rejected(self):
        spec = SweepSpec.grid(Axis("theta", (0.5,)))
        with pytest.raises(ValidationError, match="theta"):
            run_model_sweep(spec, base=BASE)

    def test_non_finite_rejected(self):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (25.0, float("inf"))))
        with pytest.raises(ValidationError, match="bandwidth_gbps"):
            run_model_sweep(spec, base=BASE)


def _square(x: float) -> float:
    return x * x


def _fail_on_three(x: float) -> float:
    if x == 3:
        raise RuntimeError("boom")
    return x


class TestParallelMap:
    def test_serial(self):
        assert parallel_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_deterministic_across_worker_counts(self):
        items = list(range(23))
        serial = parallel_map(_square, items, workers=1)
        for workers in (2, 4):
            assert parallel_map(_square, items, workers=workers) == serial

    def test_chunking_preserves_order(self):
        items = list(range(17))
        assert parallel_map(_square, items, workers=3, chunk_size=2) == [
            i * i for i in items
        ]

    def test_negative_workers_rejected(self):
        with pytest.raises(ValidationError, match="workers"):
            parallel_map(_square, [1], workers=-1)

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], workers=2, chunk_size=1)

    def test_cache_skips_recomputation(self):
        cache = ResultCache()
        items = [1.0, 2.0, 3.0]
        first = parallel_map(_square, items, cache=cache)
        assert cache.misses == 3 and cache.hits == 0
        second = parallel_map(_square, items + [4.0], cache=cache)
        assert second == [1.0, 4.0, 9.0, 16.0]
        assert cache.hits == 3 and cache.misses == 4

    def test_cache_persists_to_disk(self, tmp_path):
        cache = ResultCache(directory=str(tmp_path))
        parallel_map(_square, [2.0], cache=cache)
        fresh = ResultCache(directory=str(tmp_path))
        assert parallel_map(_square, [2.0], cache=fresh) == [4.0]
        assert fresh.hits == 1 and fresh.misses == 0

    def test_cached_none_result_is_a_hit_not_a_miss(self):
        cache = ResultCache()
        counter = {"calls": 0}

        def returns_none(x):
            counter["calls"] += 1
            return None

        assert parallel_map(returns_none, [1.0], cache=cache) == [None]
        assert parallel_map(returns_none, [1.0], cache=cache) == [None]
        # The second run must come from the cache, not re-evaluation.
        assert counter["calls"] == 1
        assert cache.misses == 1

    def test_content_hash_distinguishes_fn_and_item(self):
        assert content_hash(_square, 2.0) != content_hash(_square, 3.0)
        assert content_hash(_square, 2.0) != content_hash(_fail_on_three, 2.0)
        # partial bindings are part of the key
        assert content_hash(partial(_square), 2.0) != content_hash(
            partial(_fail_on_three), 2.0
        )

    def test_content_hash_stable_for_dict_order(self):
        assert content_hash(None, {"a": 1, "b": 2.0}) == content_hash(
            None, {"b": 2.0, "a": 1}
        )


class TestRunSweep:
    def test_dict_results_become_columns(self):
        spec = SweepSpec.grid(Axis("bandwidth_gbps", (5.0, 25.0)))
        table = run_sweep(spec, partial(evaluate_point, base=BASE.as_dict()))
        assert "t_pct" in table.metric_names
        assert table.n_rows == 2

    def test_scalar_results_become_value_column(self):
        spec = SweepSpec.grid(Axis("x", (1.0, 2.0, 3.0)))
        table = run_sweep(spec, lambda pt: pt["x"] * 10)
        np.testing.assert_allclose(table.column("value"), [10.0, 20.0, 30.0])

    def test_metric_axis_collision_rejected(self):
        spec = SweepSpec.grid(Axis("t_pct", (1.0,)))
        with pytest.raises(ValidationError, match="collides"):
            run_sweep(spec, lambda pt: {"t_pct": 1.0})

    def test_workers_produce_identical_tables(self):
        spec = _grid(4, 3)
        fn = partial(evaluate_point, base=BASE.as_dict())
        serial = run_sweep(spec, fn, workers=1)
        parallel = run_sweep(spec, fn, workers=4)
        for name in serial.columns:
            np.testing.assert_array_equal(
                serial.column(name), parallel.column(name), err_msg=name
            )


def _block_scale10(points):
    """Module-level block evaluator (picklable for worker processes)."""
    return [{"scaled": pt["x"] * 10} for pt in points]


def _block_wrong_length(points):
    return [{"scaled": 0.0}] * (len(points) + 1)


class TestBlockFn:
    def _spec(self, n=7):
        return SweepSpec.grid(Axis("x", tuple(float(i) for i in range(n))))

    def test_block_fn_matches_per_point_fn(self):
        spec = self._spec()
        per_point = run_sweep(spec, lambda pt: {"scaled": pt["x"] * 10})
        per_block = run_sweep(spec, block_fn=_block_scale10)
        np.testing.assert_array_equal(
            per_point.column("scaled"), per_block.column("scaled")
        )

    def test_block_fn_workers_identical(self):
        spec = self._spec(11)
        serial = run_sweep(spec, block_fn=_block_scale10, workers=1)
        parallel = run_sweep(spec, block_fn=_block_scale10, workers=3)
        np.testing.assert_array_equal(
            serial.column("scaled"), parallel.column("scaled")
        )

    def test_block_fn_sharded_matches_in_memory(self, tmp_path):
        spec = self._spec(9)
        mem = run_sweep(spec, block_fn=_block_scale10)
        sharded = run_sweep(
            spec, block_fn=_block_scale10, out=tmp_path / "s", block_size=4
        )
        assert sharded.n_shards == 3
        np.testing.assert_array_equal(
            mem.column("scaled"), np.asarray(sharded.column("scaled"))
        )

    def test_fn_and_block_fn_both_or_neither_rejected(self):
        spec = self._spec(2)
        with pytest.raises(ValidationError, match="exactly one"):
            run_sweep(spec)
        with pytest.raises(ValidationError, match="exactly one"):
            run_sweep(spec, lambda pt: 0.0, block_fn=_block_scale10)

    def test_block_fn_with_cache_rejected(self):
        with pytest.raises(ValidationError, match="cache"):
            run_sweep(
                self._spec(2), block_fn=_block_scale10, cache=ResultCache()
            )

    def test_block_fn_wrong_result_length_rejected(self):
        with pytest.raises(ValidationError, match="results for"):
            run_sweep(self._spec(3), block_fn=_block_wrong_length)


async def _async_square(x: float) -> float:
    import asyncio

    await asyncio.sleep(0)
    return x * x


class TestHybridBackend:
    """asyncio + process-pool hybrid behind the parallel_map contract."""

    def test_sync_fn_matches_process_backend(self):
        items = list(range(29))
        assert parallel_map(_square, items, workers=3, backend="hybrid") == [
            i * i for i in items
        ]

    def test_coroutine_fn_runs_on_loop(self):
        items = list(range(13))
        assert parallel_map(_async_square, items, workers=4, backend="hybrid") == [
            i * i for i in items
        ]

    def test_coroutine_fn_rejected_on_process_backend(self):
        with pytest.raises(ValidationError, match="hybrid"):
            parallel_map(_async_square, [1.0], backend="process")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValidationError, match="backend"):
            parallel_map(_square, [1.0], backend="threads")

    def test_hybrid_deterministic_across_worker_counts(self):
        items = list(range(23))
        serial = parallel_map(_square, items, workers=1)
        for workers in (2, 5):
            assert (
                parallel_map(_square, items, workers=workers, backend="hybrid")
                == serial
            )

    def test_hybrid_uses_cache(self):
        cache = ResultCache()
        items = [1.0, 2.0, 3.0]
        parallel_map(_square, items, backend="hybrid", cache=cache)
        assert cache.misses == 3
        again = parallel_map(_async_square, items, backend="hybrid", cache=cache)
        # different fn -> different content hashes -> fresh evaluations
        assert again == [1.0, 4.0, 9.0]
        assert cache.misses == 6

    def test_run_sweep_on_hybrid_backend_matches(self):
        spec = _grid(4, 3)
        fn = partial(evaluate_point, base=BASE.as_dict())
        serial = run_sweep(spec, fn, workers=1)
        hybrid = run_sweep(spec, fn, workers=4, backend="hybrid")
        for name in serial.columns:
            np.testing.assert_array_equal(
                serial.column(name), hybrid.column(name), err_msg=name
            )


class TestAdaptiveChunking:
    def test_targets_four_chunks_per_worker(self):
        from repro.sweep import adaptive_chunk_size

        assert adaptive_chunk_size(1000, 4) == 63  # ceil(1000/16)
        assert adaptive_chunk_size(7, 4) == 1
        assert adaptive_chunk_size(0, 4) == 1

    def test_bad_inputs_rejected(self):
        from repro.sweep import adaptive_chunk_size

        with pytest.raises(ValidationError, match="n_workers"):
            adaptive_chunk_size(10, 0)
        with pytest.raises(ValidationError, match="n_pending"):
            adaptive_chunk_size(-1, 2)

    @pytest.mark.parametrize("workers", (2, 3, 5, 8))
    def test_adaptive_chunks_preserve_order_for_any_worker_count(self, workers):
        items = list(range(41))
        assert parallel_map(_square, items, workers=workers) == [
            i * i for i in items
        ]


class TestEvaluatePoint:
    def test_point_overrides_base(self):
        out = evaluate_point({"bandwidth_gbps": 100.0}, base=BASE.as_dict())
        assert out["t_transfer"] == pytest.approx(
            model.t_transfer(BASE.s_unit_gb, 100.0, BASE.alpha), rel=1e-12
        )

    def test_r_axis_overrides_base_remote(self):
        out = evaluate_point({"r": 100.0}, base=BASE.as_dict())
        direct = evaluate_point({}, base=BASE.as_dict())
        assert out["t_remote"] < direct["t_remote"]

    def test_missing_remote_speed_rejected(self):
        with pytest.raises(ValidationError, match="remote speed"):
            evaluate_point({"s_unit_gb": 1.0, "complexity_flop_per_gb": 1e12,
                            "r_local_tflops": 10.0, "bandwidth_gbps": 25.0})

    def test_utilization_is_a_plain_axis_without_curve(self):
        """Sweeping utilization without a curve is a nominal sweep; the
        axis is carried through untouched and sss is not produced."""
        out = evaluate_point(
            {"bandwidth_gbps": 100.0, "utilization": 0.8}, base=BASE.as_dict()
        )
        assert "sss" not in out
        nominal = evaluate_point({"bandwidth_gbps": 100.0}, base=BASE.as_dict())
        assert out["decision"] == nominal["decision"]

    def test_curve_without_utilization_rejected(self):
        curve = _congestion_curve()
        with pytest.raises(ValidationError, match="utilization"):
            evaluate_point(
                {"bandwidth_gbps": 100.0}, base=BASE.as_dict(), sss_curve=curve
            )

    def test_curve_join_produces_sss_and_worst_case_decision(self):
        curve = _congestion_curve()
        out = evaluate_point(
            {"bandwidth_gbps": 100.0, "utilization": 1.2},
            base=BASE.as_dict(),
            sss_curve=curve,
        )
        assert out["sss"] > 1.0
        # Severe congestion must not leave the decision more remote-
        # friendly than the nominal one (0 = local is the safe fallback).
        nominal = evaluate_point({"bandwidth_gbps": 100.0}, base=BASE.as_dict())
        assert out["decision"] <= nominal["decision"] or out["decision"] == 0


# ----------------------------------------------------------------------
# Cross-mode equality: the acceptance bar for the SSS join
# ----------------------------------------------------------------------
class _CongestionCurve:
    """Picklable stand-in for a measured SssCurve (workers import this
    module, so a module-level class keeps the process path honest)."""

    def __init__(self):
        self.utilizations = np.array([0.16, 0.48, 0.8, 0.96, 1.28])
        self.sss_values = np.array([1.9, 3.7, 7.5, 37.5, 50.0])


def _congestion_curve() -> _CongestionCurve:
    return _CongestionCurve()


class TestSssCrossModeEquality:
    """decision/tier/sss columns must be identical in vectorized,
    process, hybrid and sharded modes — the sweep is one artifact, not
    four approximations."""

    METRICS = ("sss", "decision", "tier", "speedup")

    def _spec(self) -> SweepSpec:
        return SweepSpec.grid(
            Axis.linspace("utilization", 0.1, 1.4, 10),
            Axis.geomspace("bandwidth_gbps", 1.0, 400.0, 12),
        )

    def test_all_modes_bit_identical(self, tmp_path):
        curve = _congestion_curve()
        spec = self._spec()
        context = {"sss_curve": curve}
        vectorized = run_model_sweep(
            spec, base=BASE, metrics=self.METRICS, context=context
        )
        fn = partial(
            _sss_point_metrics, base=BASE.as_dict(), metrics=self.METRICS
        )
        process = run_sweep(spec, fn, workers=3)
        hybrid = run_sweep(spec, fn, workers=3, backend="hybrid")
        sharded = run_model_sweep(
            spec, base=BASE, metrics=self.METRICS,
            out=tmp_path / "shards", block_size=17, context=context,
        )
        for name in self.METRICS + ("utilization", "bandwidth_gbps"):
            ref = np.asarray(vectorized.column(name))
            for label, table in (
                ("process", process),
                ("hybrid", hybrid),
                ("sharded", sharded),
            ):
                np.testing.assert_array_equal(
                    ref, np.asarray(table.column(name)),
                    err_msg=f"{name} differs in {label} mode",
                )

    def test_decisions_flip_under_severe_congestion(self):
        """The whole point of the join: at least one grid point decided
        remote nominally must decide local under the measured curve."""
        spec = self._spec()
        nominal = run_model_sweep(spec, base=BASE, metrics=("decision",))
        congested = run_model_sweep(
            spec, base=BASE, metrics=("decision",),
            context={"sss_curve": _congestion_curve()},
        )
        nom = np.asarray(nominal.column("decision"))
        con = np.asarray(congested.column("decision"))
        flipped_to_local = (nom != 0) & (con == 0)
        assert flipped_to_local.any()
        # And the flip is one-directional: congestion never makes a
        # nominally-local point choose remote.
        assert not ((nom == 0) & (con != 0)).any()


def _sss_point_metrics(point, base=None, metrics=None):
    """Module-level, picklable: evaluate_point with the congestion
    curve joined, restricted to the requested metrics."""
    out = evaluate_point(point, base=base, sss_curve=_congestion_curve())
    return {m: out[m] for m in metrics}
