"""Closed-form model identities (Eqs. 3-10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import model
from repro.errors import ValidationError


class TestTLocal:
    def test_eq3_basic(self):
        # 1e12 FLOP/GB * 2 GB / 1 TFLOPS = 2 s
        assert model.t_local(2.0, 1e12, 1.0) == pytest.approx(2.0)

    def test_zero_complexity_is_instant(self):
        assert model.t_local(5.0, 0.0, 1.0) == 0.0

    def test_scales_linearly_with_size(self):
        assert model.t_local(4.0, 1e12, 1.0) == pytest.approx(
            2 * model.t_local(2.0, 1e12, 1.0)
        )

    def test_vectorised(self):
        out = model.t_local(np.array([1.0, 2.0]), 1e12, 1.0)
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_rejects_zero_rate(self):
        with pytest.raises(ValidationError):
            model.t_local(1.0, 1e12, 0.0)


class TestTTransfer:
    def test_paper_canonical_value(self):
        # 0.5 GB at 25 Gbps, alpha=1: the paper's 0.16 s.
        assert model.t_transfer(0.5, 25.0) == pytest.approx(0.16)

    def test_alpha_derates(self):
        assert model.t_transfer(0.5, 25.0, alpha=0.5) == pytest.approx(0.32)

    def test_rejects_alpha_above_one(self):
        with pytest.raises(ValidationError):
            model.t_transfer(1.0, 25.0, alpha=1.2)


class TestTRemote:
    def test_eq6(self):
        # r=10 cuts the local time tenfold.
        assert model.t_remote(2.0, 1e12, 1.0, r=10.0) == pytest.approx(0.2)

    def test_r_below_one_slows_down(self):
        assert model.t_remote(2.0, 1e12, 1.0, r=0.5) == pytest.approx(4.0)


class TestTIO:
    def test_theta_one_means_zero_io(self):
        assert model.t_io(1.0, 25.0, theta=1.0) == 0.0

    def test_eq7_consistency(self):
        # theta * T_transfer == T_IO + T_transfer
        s, bw, a, th = 2.0, 25.0, 0.8, 3.0
        t_tr = model.t_transfer(s, bw, a)
        t_io = model.t_io(s, bw, a, th)
        assert th * t_tr == pytest.approx(t_io + t_tr)

    def test_rejects_theta_below_one(self):
        with pytest.raises(ValidationError):
            model.t_io(1.0, 25.0, theta=0.5)


class TestTPct:
    def test_eq10_decomposition(self):
        s, c, rl, bw = 2.0, 17e12, 10.0, 25.0
        a, r, th = 0.8, 10.0, 3.0
        expected = th * s / (a * bw / 8.0) + c * s / (r * rl * 1e12)
        assert model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=th) == pytest.approx(
            expected
        )

    def test_streaming_theta_one_is_transfer_plus_remote(self):
        s, c, rl, bw, a, r = 1.0, 1e12, 1.0, 8.0, 1.0, 2.0
        assert model.t_pct(s, c, rl, bw, alpha=a, r=r, theta=1.0) == pytest.approx(
            model.t_transfer(s, bw, a) + model.t_remote(s, c, rl, r)
        )

    def test_broadcasts_over_grid(self):
        theta = np.array([1.0, 2.0, 4.0])
        out = model.t_pct(1.0, 1e12, 1.0, 8.0, theta=theta)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_monotone_decreasing_in_bandwidth(self):
        bw = np.array([1.0, 10.0, 100.0])
        out = model.t_pct(1.0, 1e12, 1.0, bw)
        assert np.all(np.diff(out) < 0)


class TestTPctQueued:
    def test_sss_one_equals_ideal(self):
        base = model.t_pct(1.0, 1e12, 1.0, 8.0, alpha=1.0, r=2.0, theta=2.0)
        queued = model.t_pct_queued(1.0, 1e12, 1.0, 8.0, sss=1.0, r=2.0, theta=2.0)
        assert queued == pytest.approx(base)

    def test_sss_inflates_transfer_term_only(self):
        s, c, rl, bw, r, th = 1.0, 1e12, 1.0, 8.0, 2.0, 1.0
        q1 = model.t_pct_queued(s, c, rl, bw, sss=1.0, r=r, theta=th)
        q10 = model.t_pct_queued(s, c, rl, bw, sss=10.0, r=r, theta=th)
        t_remote = model.t_remote(s, c, rl, r)
        assert q10 - t_remote == pytest.approx(10.0 * (q1 - t_remote))

    def test_rejects_sss_below_one(self):
        with pytest.raises(ValidationError):
            model.t_pct_queued(1.0, 1e12, 1.0, 8.0, sss=0.9)


class TestSpeedupAndDecision:
    def test_speedup_above_one_when_remote_wins(self):
        # Huge remote, fat pipe, no overhead.
        g = model.speedup(1.0, 1e13, 1.0, 100.0, r=100.0)
        assert g > 1.0
        assert model.remote_is_faster(1.0, 1e13, 1.0, 100.0, r=100.0)

    def test_speedup_below_one_when_local_wins(self):
        g = model.speedup(10.0, 1e10, 10.0, 1.0, alpha=0.5, r=1.5, theta=5.0)
        assert g < 1.0

    def test_r_at_most_one_never_wins(self):
        # With r <= 1 remote compute is no faster and transfer adds time.
        g = model.speedup(1.0, 1e12, 1.0, 100.0, r=1.0)
        assert g < 1.0


class TestEvaluate:
    def test_components_sum(self, params):
        times = model.evaluate(params)
        assert times.t_pct == pytest.approx(
            params.theta * times.t_transfer + times.t_remote
        )
        assert times.t_io == pytest.approx((params.theta - 1) * times.t_transfer)

    def test_speedup_matches_ratio(self, params):
        times = model.evaluate(params)
        assert times.speedup == pytest.approx(times.t_local / times.t_pct)

    def test_reduction_pct(self, params):
        times = model.evaluate(params)
        expected = 100.0 * (1 - times.t_pct / times.t_local)
        assert times.reduction_pct == pytest.approx(expected)

    def test_local_wins_fixture(self, local_wins_params):
        times = model.evaluate(local_wins_params)
        assert not times.remote_is_faster
        assert times.reduction_pct < 0
