"""Interface counters derived from link samples."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import MeasurementError, ValidationError
from repro.simnet.counters import InterfaceCounters
from repro.simnet.link import fabric_link
from repro.simnet.records import LinkSample
from repro.simnet.tcp import FluidTcpSimulator


def samples():
    return [
        LinkSample(0.0, 0.1, 3.125e8, 0.0, 2),   # line rate for 0.1 s
        LinkSample(0.1, 0.1, 1.5625e8, 1e6, 2),  # half rate
        LinkSample(0.2, 0.1, 0.0, 0.0, 0),       # idle
    ]


class TestSnapshots:
    def test_cumulative_bytes(self):
        snaps = InterfaceCounters(25.0).snapshots(samples())
        assert snaps[-1].rx_bytes == pytest.approx(3.125e8 + 1.5625e8)

    def test_bitrate_and_utilization(self):
        snaps = InterfaceCounters(25.0).snapshots(samples())
        assert snaps[0].bitrate_gbps == pytest.approx(25.0)
        assert snaps[0].utilization == pytest.approx(1.0)
        assert snaps[1].utilization == pytest.approx(0.5)
        assert snaps[2].utilization == 0.0

    def test_packet_estimate_uses_mtu(self):
        snaps = InterfaceCounters(25.0, mtu_bytes=9000).snapshots(samples())
        assert snaps[0].rx_packets == pytest.approx(3.125e8 / 9000)


class TestAggregates:
    def test_peak(self):
        assert InterfaceCounters(25.0).peak_utilization(samples()) == pytest.approx(1.0)

    def test_mean_weighted_by_time(self):
        mean = InterfaceCounters(25.0).mean_utilization(samples())
        assert mean == pytest.approx((1.0 + 0.5 + 0.0) / 3)

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            InterfaceCounters(25.0).peak_utilization([])
        with pytest.raises(MeasurementError):
            InterfaceCounters(25.0).mean_utilization([])

    def test_series_shapes(self):
        t, u = InterfaceCounters(25.0).utilization_series(samples())
        assert t.shape == u.shape == (3,)
        assert np.all(np.diff(t) > 0)


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValidationError):
            InterfaceCounters(0.0)

    def test_bad_mtu_rejected(self):
        with pytest.raises(ValidationError):
            InterfaceCounters(25.0, mtu_bytes=0)


class TestIntegrationWithSim:
    def test_counters_match_simulation(self):
        link = fabric_link()
        sim = FluidTcpSimulator(link, seed=0)
        sim.add_flow(0.0, 0.5e9)
        res = sim.run()
        counters = InterfaceCounters(link.capacity_gbps, link.mtu_bytes)
        snaps = counters.snapshots(res.link_samples)
        assert snaps[-1].rx_bytes == pytest.approx(0.5e9, rel=1e-6)
        assert counters.peak_utilization(res.link_samples) <= 1.0 + 1e-9
