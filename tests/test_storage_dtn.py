"""DTN staging model."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.storage.dtn import DtnModel
from repro.storage.presets import eagle_lustre, voyager_gpfs


def dtn(**kw):
    base = dict(wan_bandwidth_gbps=25.0, alpha=0.5, per_file_setup_s=1.0)
    base.update(kw)
    return DtnModel(**base)


class TestRates:
    def test_wan_rate(self):
        # 25 Gbps x 0.5 = 12.5 Gbps = 1.5625 GB/s.
        assert dtn().wan_rate_bytes_per_s == pytest.approx(1.5625e9)


class TestFileCost:
    def test_breakdown(self, source_fs, dest_fs):
        cost = dtn().file_cost(1.5625e9, source_fs, dest_fs)
        assert cost.setup_s == 1.0
        assert cost.wan_s == pytest.approx(1.0)
        assert cost.read_s > 0 and cost.write_s > 0

    def test_pipelined_takes_slowest_stage(self, source_fs, dest_fs):
        cost = dtn().file_cost(10e9, source_fs, dest_fs)
        assert cost.pipelined_bytes_s == pytest.approx(
            max(cost.read_s, cost.wan_s, cost.write_s)
        )

    def test_total_is_setup_plus_pipeline_plus_checksum(self, source_fs, dest_fs):
        d = dtn(checksum_gbytes_per_s=1.0)
        cost = d.file_cost(2e9, source_fs, dest_fs)
        assert cost.checksum_s == pytest.approx(2.0)
        assert cost.total_s == pytest.approx(
            cost.setup_s + cost.pipelined_bytes_s + cost.checksum_s
        )

    def test_no_checksum_by_default(self, source_fs, dest_fs):
        assert dtn().file_cost(1e9, source_fs, dest_fs).checksum_s == 0.0

    def test_small_file_dominated_by_setup(self, source_fs, dest_fs):
        cost = dtn().file_cost(8.4e6, source_fs, dest_fs)  # one APS frame
        assert cost.setup_s / cost.total_s > 0.9

    def test_rejects_zero_bytes(self, source_fs, dest_fs):
        with pytest.raises(ValidationError):
            dtn().file_cost(0.0, source_fs, dest_fs)


class TestBatch:
    def test_serial_batch(self, source_fs, dest_fs):
        d = dtn()
        per = d.file_cost(1e9, source_fs, dest_fs).total_s
        assert d.batch_time_s(1e9, 10, source_fs, dest_fs) == pytest.approx(10 * per)

    def test_concurrency_divides_waves(self, source_fs, dest_fs):
        d = dtn(concurrency=4)
        per = d.file_cost(1e9, source_fs, dest_fs).total_s
        # 10 files over 4 slots = 3 waves.
        assert d.batch_time_s(1e9, 10, source_fs, dest_fs) == pytest.approx(3 * per)

    def test_bad_nfiles(self, source_fs, dest_fs):
        with pytest.raises(ValidationError):
            dtn().batch_time_s(1e9, 0, source_fs, dest_fs)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("wan_bandwidth_gbps", 0.0),
        ("alpha", 0.0),
        ("alpha", 1.5),
        ("per_file_setup_s", -1.0),
        ("concurrency", 0),
        ("checksum_gbytes_per_s", 0.0),
    ])
    def test_rejects(self, field, value):
        with pytest.raises(ValidationError):
            dtn(**{field: value})
