"""Empirical CDF (Figure 3 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MeasurementError
from repro.measurement.cdf import EmpiricalCdf


class TestBasics:
    def test_step_values(self):
        cdf = EmpiricalCdf([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_vectorised_call(self):
        cdf = EmpiricalCdf([1.0, 2.0])
        np.testing.assert_allclose(cdf(np.array([0.0, 1.5, 3.0])), [0.0, 0.5, 1.0])

    def test_support(self):
        assert EmpiricalCdf([3.0, 1.0, 2.0]).support == (1.0, 3.0)

    def test_empty_raises(self):
        with pytest.raises(MeasurementError):
            EmpiricalCdf([])

    def test_non_finite_raises(self):
        with pytest.raises(MeasurementError):
            EmpiricalCdf([1.0, float("inf")])


class TestQuantiles:
    def test_quantile_inverse(self):
        samples = np.linspace(0, 10, 101)
        cdf = EmpiricalCdf(samples)
        assert cdf.quantile(0.5) == pytest.approx(5.0)
        assert cdf.quantile(1.0) == pytest.approx(10.0)

    def test_quantile_bounds(self):
        with pytest.raises(MeasurementError):
            EmpiricalCdf([1.0]).quantile(1.5)

    def test_tabulate(self):
        rows = EmpiricalCdf(np.arange(1, 101, dtype=float)).tabulate((0.5, 1.0))
        assert rows[0][0] == 0.5
        assert rows[1][1] == pytest.approx(100.0)


class TestSteps:
    def test_steps_are_valid_distribution(self):
        x, y = EmpiricalCdf([3.0, 1.0, 2.0]).steps()
        assert np.all(np.diff(x) >= 0)
        assert np.all(np.diff(y) > 0)
        assert y[-1] == pytest.approx(1.0)


class TestKnee:
    def test_light_tail_scores_low(self):
        cdf = EmpiricalCdf(np.linspace(1.0, 2.0, 1000))
        # Uniform: (P99-P90)/(P90-P50) = 0.09/0.40 = 0.225.
        assert cdf.knee_severity() < 0.5

    def test_heavy_tail_scores_high(self):
        # Congested-FCT-like: tight bulk, exploding top decile.
        bulk = np.full(900, 1.0)
        tail = np.linspace(1.0, 30.0, 100)
        cdf = EmpiricalCdf(np.concatenate([bulk, tail]))
        assert cdf.knee_severity() > 1.0

    def test_degenerate_mid_range(self):
        cdf = EmpiricalCdf(np.concatenate([np.full(99, 1.0), [50.0]]))
        assert cdf.knee_severity() == np.inf

    def test_constant_samples(self):
        assert EmpiricalCdf(np.full(10, 2.0)).knee_severity() == 0.0


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1))
    def test_monotone_property(self, samples):
        cdf = EmpiricalCdf(samples)
        xs = np.sort(np.asarray(samples))
        ys = cdf(xs)
        assert np.all(np.diff(ys) >= -1e-12)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1))
    def test_range_zero_one(self, samples):
        cdf = EmpiricalCdf(samples)
        lo, hi = cdf.support
        assert cdf(lo - 1.0) == 0.0
        assert cdf(hi) == 1.0
