"""Resource (counted FIFO) semantics."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simnet.engine import Environment, Resource


class TestResource:
    def test_grants_up_to_capacity_immediately(self):
        env = Environment()
        res = Resource(env, capacity=2)
        a, b = res.request(), res.request()
        assert a.triggered and b.triggered
        assert res.in_use == 2

    def test_third_request_queues(self):
        env = Environment()
        res = Resource(env, capacity=2)
        res.request(), res.request()
        c = res.request()
        assert not c.triggered
        assert res.queued == 1

    def test_release_wakes_fifo(self):
        env = Environment()
        res = Resource(env, capacity=1)
        res.request()
        first_waiter = res.request()
        second_waiter = res.request()
        res.release()
        assert first_waiter.triggered and not second_waiter.triggered

    def test_release_without_request_raises(self):
        env = Environment()
        res = Resource(env, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)

    def test_pipeline_serialisation(self):
        """With capacity 1, three 2-second jobs take 6 seconds."""
        env = Environment()
        res = Resource(env, capacity=1)
        done = []

        def job(env, name):
            grant = res.request()
            yield grant
            yield 2.0
            done.append((name, env.now))
            res.release()

        for name in "abc":
            env.process(job(env, name))
        env.run()
        assert done == [("a", 2.0), ("b", 4.0), ("c", 6.0)]

    def test_pipeline_concurrency_two(self):
        """With capacity 2, three 2-second jobs take 4 seconds."""
        env = Environment()
        res = Resource(env, capacity=2)
        done = []

        def job(env, name):
            yield res.request()
            yield 2.0
            done.append((name, env.now))
            res.release()

        for name in "abc":
            env.process(job(env, name))
        env.run()
        assert [t for _, t in done] == [2.0, 2.0, 4.0]
